"""Tests for ASCII AIGER reading and writing."""

import pytest

from repro.aig import AIG, lit_not, read_aiger, write_aiger
from repro.aig.aiger import read_aiger_file, write_aiger_file
from repro.aig.simulate import evaluate
from repro.errors import AigerFormatError


def _build_full_adder():
    aig = AIG(name="full_adder")
    a = aig.add_pi("a")
    b = aig.add_pi("b")
    cin = aig.add_pi("cin")
    s = aig.add_xor(aig.add_xor(a, b), cin)
    cout = aig.add_maj(a, b, cin)
    aig.add_po(s, "sum")
    aig.add_po(cout, "cout")
    return aig


class TestRoundtrip:
    def test_roundtrip_preserves_interface(self):
        aig = _build_full_adder()
        text = write_aiger(aig)
        parsed = read_aiger(text)
        assert parsed.num_pis == 3
        assert parsed.num_pos == 2
        assert parsed.pi_names == ["a", "b", "cin"]
        assert parsed.po_names == ["sum", "cout"]

    def test_roundtrip_preserves_function(self):
        aig = _build_full_adder()
        parsed = read_aiger(write_aiger(aig))
        for pattern in range(8):
            bits = [bool((pattern >> i) & 1) for i in range(3)]
            assert evaluate(aig, bits) == evaluate(parsed, bits)

    def test_roundtrip_with_complemented_output(self):
        aig = AIG()
        a = aig.add_pi()
        b = aig.add_pi()
        aig.add_po(lit_not(aig.add_and(a, b)))
        parsed = read_aiger(write_aiger(aig))
        for pattern in range(4):
            bits = [bool((pattern >> i) & 1) for i in range(2)]
            assert evaluate(aig, bits) == evaluate(parsed, bits)

    def test_file_roundtrip(self, tmp_path):
        aig = _build_full_adder()
        path = tmp_path / "adder.aag"
        write_aiger_file(aig, path)
        parsed = read_aiger_file(path)
        assert parsed.name == "adder"
        assert parsed.num_pos == 2

    def test_constant_output(self):
        aig = AIG()
        aig.add_pi()
        aig.add_po(1)  # constant true
        parsed = read_aiger(write_aiger(aig))
        assert evaluate(parsed, [False]) == [True]


class TestHeaderParsing:
    def test_minimal_file(self):
        text = "aag 1 1 0 1 0\n2\n2\n"
        aig = read_aiger(text)
        assert aig.num_pis == 1
        assert aig.num_pos == 1
        assert evaluate(aig, [True]) == [True]

    def test_and_gate_file(self):
        text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n"
        aig = read_aiger(text)
        assert evaluate(aig, [True, True]) == [True]
        assert evaluate(aig, [True, False]) == [False]

    def test_rejects_empty(self):
        with pytest.raises(AigerFormatError):
            read_aiger("")

    def test_rejects_bad_header(self):
        with pytest.raises(AigerFormatError):
            read_aiger("aig 1 1 0 1 0\n2\n2\n")
        with pytest.raises(AigerFormatError):
            read_aiger("aag x 1 0 1 0\n2\n2\n")

    def test_rejects_latches(self):
        with pytest.raises(AigerFormatError):
            read_aiger("aag 1 0 1 0 0\n2 3\n")

    def test_rejects_truncated_body(self):
        with pytest.raises(AigerFormatError):
            read_aiger("aag 3 2 0 1 1\n2\n4\n6\n")

    def test_rejects_complemented_input(self):
        with pytest.raises(AigerFormatError):
            read_aiger("aag 1 1 0 1 0\n3\n2\n")

    def test_rejects_undefined_literal(self):
        with pytest.raises(AigerFormatError):
            read_aiger("aag 3 2 0 1 1\n2\n4\n6\n6 2 10\n")
