"""SAT-sweeping tests (repro.aig.sweep).

The backbone is differential: for every benchmark-generator family with at
most 12 primary inputs, the swept AIG must be *exhaustively-simulation
equivalent* to the original — every one of the ``2**num_pis`` input
patterns produces identical primary outputs.  Soundness must also survive
the stress paths: starved simulation (forcing counterexample refinement)
and starved conflict budgets (forcing budgeted-out pairs).
"""

import pytest

from repro.aig.simulate import po_truth_tables
from repro.aig.sweep import SweepStats, fraig, sweep_aig
from repro.benchgen.atpg import atpg_instance
from repro.benchgen.datapath import (
    array_multiplier,
    carry_select_adder,
    comparator,
    mux_tree,
    parity_tree,
    ripple_carry_adder,
)
from repro.benchgen.lec import (
    adder_equivalence_miter,
    lec_instance,
    multiplier_commutativity_miter,
)
from repro.benchgen.random_logic import random_aig
from repro.synthesis.recipe import apply_operation, apply_recipe


def _families():
    """One representative instance per benchgen family, all with <= 12 PIs."""
    return [
        ("lec_adder_eq", adder_equivalence_miter(4)),
        ("lec_adder_neq", adder_equivalence_miter(4, mutated=True, seed=2)),
        ("lec_mult_eq", multiplier_commutativity_miter(3)),
        ("lec_mult_neq", multiplier_commutativity_miter(3, mutated=True,
                                                        seed=1)),
        ("lec_generic", lec_instance(random_aig(9, 120, seed=4),
                                     equivalent=True)),
        ("datapath_adder", ripple_carry_adder(5)),
        ("datapath_csel", carry_select_adder(5)),
        ("datapath_mult", array_multiplier(4)),
        ("datapath_cmp", comparator(6)),
        ("datapath_mux", mux_tree(3)),
        ("datapath_parity", parity_tree(10)),
        ("random", random_aig(10, 150, seed=8)),
        ("atpg", atpg_instance(random_aig(9, 100, seed=5), seed=3)),
    ]


class TestSweepEquivalence:
    @pytest.mark.parametrize("name,aig", _families(),
                             ids=[name for name, _ in _families()])
    def test_exhaustive_equivalence(self, name, aig):
        assert aig.num_pis <= 12
        result = sweep_aig(aig)
        assert po_truth_tables(result.aig) == po_truth_tables(aig)

    @pytest.mark.parametrize("seed", range(4))
    def test_starved_simulation_forces_refinement(self, seed):
        # 64 patterns leave many false candidates; the counterexample loop
        # must refute them without ever merging a non-equivalent pair.
        aig = random_aig(12, 200, seed=seed)
        result = sweep_aig(aig, num_patterns=64)
        assert po_truth_tables(result.aig) == po_truth_tables(aig)

    def test_refinement_path_is_exercised(self):
        refuted = sum(sweep_aig(random_aig(12, 200, seed=seed),
                                num_patterns=64).stats.refuted
                      for seed in range(4))
        assert refuted > 0

    def test_starved_budget_stays_sound(self):
        aig = multiplier_commutativity_miter(3)
        result = sweep_aig(aig, conflict_budget=1)
        assert result.stats.undecided > 0
        assert po_truth_tables(result.aig) == po_truth_tables(aig)


class TestSweepBehaviour:
    def test_equivalence_miter_collapses_to_constant(self):
        result = sweep_aig(multiplier_commutativity_miter(3))
        assert result.aig.num_ands == 0      # PO becomes constant false
        assert result.stats.merges > 0
        assert result.stats.refuted == 0

    def test_interface_is_preserved(self):
        aig = adder_equivalence_miter(4)
        result = sweep_aig(aig)
        assert result.aig.num_pis == aig.num_pis
        assert result.aig.num_pos == aig.num_pos
        assert result.aig.pi_names == aig.pi_names
        assert result.aig.po_names == aig.po_names

    def test_never_grows(self):
        for seed in range(3):
            aig = random_aig(10, 150, seed=seed)
            result = sweep_aig(aig)
            assert result.aig.num_ands <= aig.num_ands

    def test_deterministic(self):
        first = sweep_aig(multiplier_commutativity_miter(3)).stats.as_dict()
        second = sweep_aig(multiplier_commutativity_miter(3)).stats.as_dict()
        first.pop("sweep_time")
        second.pop("sweep_time")
        assert first == second

    def test_stats_consistency(self):
        stats = sweep_aig(multiplier_commutativity_miter(3)).stats
        assert isinstance(stats, SweepStats)
        assert stats.sat_calls == stats.proved + stats.refuted + stats.undecided
        assert stats.merges == stats.proved
        assert stats.const_merges <= stats.merges
        assert set(stats.as_dict()) >= {"nodes_before", "nodes_after",
                                        "sat_calls", "merges", "sweep_time"}

    def test_early_return_stats_match_cleaned_output(self):
        from repro.aig.aig import AIG

        # A dangling AND node and no candidate classes: the early-return
        # path must report the node count of the *cleaned* output AIG.
        aig = AIG(name="dangling")
        first = aig.add_pi("a")
        second = aig.add_pi("b")
        aig.add_and(first, second)   # not in any PO cone
        aig.add_po(first, "out")
        result = sweep_aig(aig)
        assert result.aig.num_ands == 0
        assert result.stats.nodes_after == result.aig.num_ands

    def test_no_and_nodes_is_a_noop(self):
        from repro.aig.aig import AIG

        aig = AIG(name="wires")
        literal = aig.add_pi("a")
        aig.add_po(literal, "out")
        result = sweep_aig(aig)
        assert result.stats.sat_calls == 0
        assert po_truth_tables(result.aig) == po_truth_tables(aig)


class TestFraigRecipeOperation:
    def test_fraig_registered_with_alias(self):
        aig = multiplier_commutativity_miter(3)
        by_name = apply_operation(aig, "fraig")
        by_alias = apply_operation(aig, "f")
        assert by_name.num_ands == by_alias.num_ands == 0
        assert po_truth_tables(by_name) == po_truth_tables(aig)

    def test_fraig_inside_recipe(self):
        aig = lec_instance(random_aig(9, 120, seed=6), equivalent=True)
        swept = apply_recipe(aig, ["balance", "rewrite", "fraig"])
        assert po_truth_tables(swept) == po_truth_tables(aig)
        assert swept.num_ands <= aig.num_ands

    def test_fraig_wrapper(self):
        aig = multiplier_commutativity_miter(3)
        assert fraig(aig).num_ands == 0
