"""Tests for the Algorithm 1 preprocessor."""

import pytest

from repro.benchgen import lec_instance
from repro.benchgen.datapath import parity_tree, ripple_carry_adder
from repro.core import Preprocessor
from repro.mapping.cost import branching_complexity
from repro.rl import RandomAgent
from repro.sat import solve_cnf
from repro.cnf import tseitin_encode
from tests.helpers import random_aig


class TestPreprocessor:
    def test_default_preprocess_produces_smaller_cnf(self):
        instance = lec_instance(ripple_carry_adder(4), equivalent=False, seed=1)
        baseline = tseitin_encode(instance)
        result = Preprocessor().preprocess(instance)
        assert result.cnf.num_vars < baseline.num_vars
        assert result.preprocess_time >= 0.0
        assert result.recipe  # the default recipe is non-empty

    def test_preprocessed_cnf_is_equisatisfiable(self):
        # SAT case.
        sat_instance = lec_instance(ripple_carry_adder(3), equivalent=False, seed=2)
        sat_result = Preprocessor().preprocess(sat_instance)
        assert solve_cnf(sat_result.cnf).is_sat
        assert solve_cnf(tseitin_encode(sat_instance)).is_sat
        # UNSAT case.
        unsat_instance = lec_instance(ripple_carry_adder(3), equivalent=True)
        unsat_result = Preprocessor().preprocess(unsat_instance)
        assert solve_cnf(unsat_result.cnf).is_unsat
        assert solve_cnf(tseitin_encode(unsat_instance)).is_unsat

    def test_explicit_recipe_is_used(self):
        instance = random_aig(num_pis=6, num_nodes=30, seed=3)
        preprocessor = Preprocessor(recipe=["balance"])
        result = preprocessor.preprocess(instance)
        assert result.recipe == ["balance"]

    def test_agent_driven_recipe(self):
        instance = lec_instance(ripple_carry_adder(3), equivalent=False, seed=4)
        preprocessor = Preprocessor(agent=RandomAgent(seed=1), max_steps=3)
        result = preprocessor.preprocess(instance)
        assert 0 < len(result.recipe) <= 3
        assert solve_cnf(result.cnf).status in ("SAT", "UNSAT")

    def test_mapping_cost_matches_netlist(self):
        instance = lec_instance(parity_tree(10), equivalent=False, seed=5)
        result = Preprocessor(use_branching_cost=True).preprocess(instance)
        total = sum(branching_complexity(node.table, node.num_inputs)
                    for node in result.netlist.luts())
        assert result.mapping_cost == pytest.approx(total)

    def test_area_cost_variant(self):
        instance = lec_instance(ripple_carry_adder(3), equivalent=False, seed=6)
        result = Preprocessor(use_branching_cost=False).preprocess(instance)
        assert result.mapping_cost == pytest.approx(result.netlist.num_luts)

    def test_initial_recipe_option(self):
        instance = random_aig(num_pis=6, num_nodes=40, seed=7)
        with_initial = Preprocessor(apply_initial_recipe=True, recipe=["resub"])
        result = with_initial.preprocess(instance)
        assert solve_cnf(result.cnf).status in ("SAT", "UNSAT")


class TestPiAssignment:
    def test_sat_model_maps_back_to_a_real_counterexample(self):
        from repro.aig import evaluate
        from repro.sat.configs import kissat_like

        instance = lec_instance(ripple_carry_adder(6), equivalent=False,
                                seed=3)
        preprocessed = Preprocessor().preprocess(instance)
        result = solve_cnf(preprocessed.cnf, config=kissat_like())
        assert result.is_sat
        assignment = preprocessed.pi_assignment(result.model)
        assert len(assignment) == instance.num_pis
        # The assignment is a genuine witness: it drives the miter to 1 on
        # both the original and the transformed circuit.
        assert any(evaluate(instance, assignment))
        assert any(evaluate(preprocessed.final_aig, assignment))
