"""SAT sweeping threaded through the preprocessing pipelines."""

from repro.benchgen.lec import multiplier_commutativity_miter
from repro.core.pipeline import run_pipeline
from repro.core.preprocess import Preprocessor


def _miter():
    return multiplier_commutativity_miter(3)


class TestPreprocessorSweep:
    def test_sweep_shrinks_the_final_aig(self):
        plain = Preprocessor(recipe=["balance"], sweep=False).preprocess(_miter())
        swept = Preprocessor(recipe=["balance"], sweep=True).preprocess(_miter())
        assert swept.final_aig.num_ands < plain.final_aig.num_ands
        assert swept.cnf.num_vars <= plain.cnf.num_vars

    def test_sweep_kwargs_are_forwarded(self):
        result = Preprocessor(recipe=["balance"], sweep=True,
                              sweep_kwargs={"conflict_budget": 1}).preprocess(
                                  _miter())
        # A one-conflict budget proves nothing, so nothing collapses.
        assert result.final_aig.num_ands > 0


class TestPipelineSweepKwarg:
    def test_every_pipeline_accepts_sweep(self):
        for pipeline in ("Baseline", "Comp.", "Ours"):
            run = run_pipeline(_miter(), pipeline,
                               pipeline_kwargs={"sweep": True})
            assert run.status == "UNSAT", pipeline

    def test_baseline_sweep_shrinks_the_encoding(self):
        plain = run_pipeline(_miter(), "Baseline")
        swept = run_pipeline(_miter(), "Baseline",
                             pipeline_kwargs={"sweep": True})
        assert swept.status == plain.status == "UNSAT"
        assert swept.num_vars < plain.num_vars
        assert swept.stats.decisions <= plain.stats.decisions
