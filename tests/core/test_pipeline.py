"""Tests for the Baseline / Comp. / Ours pipelines and end-to-end runs."""

import pytest

from repro.benchgen import atpg_instance, lec_instance
from repro.benchgen.datapath import parity_tree, ripple_carry_adder
from repro.core import (
    PIPELINES,
    baseline_pipeline,
    comp_pipeline,
    ours_pipeline,
    run_pipeline,
)
from repro.core.pipeline import PipelineComparison
from repro.sat import cadical_like, kissat_like, solve_cnf


def _sat_instance():
    return lec_instance(ripple_carry_adder(3), equivalent=False, seed=11)


def _unsat_instance():
    return lec_instance(ripple_carry_adder(3), equivalent=True)


class TestPipelineEncodings:
    def test_registry_contains_paper_labels(self):
        assert set(PIPELINES) == {"Baseline", "Comp.", "Ours"}

    @pytest.mark.parametrize("pipeline", [baseline_pipeline, comp_pipeline,
                                          ours_pipeline],
                             ids=["baseline", "comp", "ours"])
    def test_all_pipelines_equisatisfiable_sat(self, pipeline):
        cnf, transform_time = pipeline(_sat_instance())
        assert transform_time >= 0.0
        assert solve_cnf(cnf).is_sat

    @pytest.mark.parametrize("pipeline", [baseline_pipeline, comp_pipeline,
                                          ours_pipeline],
                             ids=["baseline", "comp", "ours"])
    def test_all_pipelines_equisatisfiable_unsat(self, pipeline):
        cnf, _ = pipeline(_unsat_instance())
        assert solve_cnf(cnf).is_unsat

    def test_preprocessed_encodings_are_smaller(self):
        instance = lec_instance(parity_tree(12), equivalent=False, seed=3)
        baseline_cnf, _ = baseline_pipeline(instance)
        ours_cnf, _ = ours_pipeline(instance)
        assert ours_cnf.num_vars < baseline_cnf.num_vars
        assert ours_cnf.num_clauses < baseline_cnf.num_clauses


class TestRunPipeline:
    def test_run_by_name(self):
        run = run_pipeline(_sat_instance(), "Baseline", config=kissat_like())
        assert run.pipeline_name == "Baseline"
        assert run.status == "SAT"
        assert run.total_time == pytest.approx(run.transform_time + run.solve_time)
        assert run.decisions == run.stats.decisions
        assert run.num_clauses > 0

    def test_run_with_callable(self):
        run = run_pipeline(_unsat_instance(), ours_pipeline, config=cadical_like())
        assert run.status == "UNSAT"
        assert run.pipeline_name == "ours_pipeline"

    def test_run_atpg_instance(self):
        instance = atpg_instance(ripple_carry_adder(3), seed=9)
        run = run_pipeline(instance, "Ours")
        assert run.status in ("SAT", "UNSAT")

    def test_budgeted_run_can_return_unknown(self):
        instance = lec_instance(ripple_carry_adder(6), equivalent=True)
        run = run_pipeline(instance, "Baseline", max_decisions=1)
        assert run.status in ("UNKNOWN", "UNSAT")

    def test_pipelines_agree_on_status(self):
        for builder in (_sat_instance, _unsat_instance):
            instance = builder()
            statuses = {run_pipeline(instance, name).status for name in PIPELINES}
            assert len(statuses) == 1


class TestPipelineComparison:
    def test_accumulates_totals(self):
        comparison = PipelineComparison()
        instance = _sat_instance()
        for name in PIPELINES:
            comparison.add(run_pipeline(instance, name))
        for name in PIPELINES:
            assert comparison.total_time(name) > 0.0
            assert comparison.solved(name) == 1
            assert comparison.total_decisions(name) >= 0
