"""Crash/corruption hardening tests for the JSONL result store."""

import json

import pytest

from repro.core.results import InstanceRun
from repro.resilience.chaos import use_chaos
from repro.runner.store import ResultStore, run_to_record
from repro.runner.task import SCHEMA_VERSION
from repro.sat.stats import SolverStats


def make_run(name="inst", status="SAT"):
    return InstanceRun(instance_name=name, pipeline_name="Baseline",
                       status=status, transform_time=0.1, solve_time=0.2,
                       stats=SolverStats(), num_vars=3, num_clauses=2)


def record_line(fingerprint, name="inst"):
    record = run_to_record(make_run(name), fingerprint)
    return json.dumps(record, sort_keys=True)


class TestCorruptionRecovery:
    def test_torn_first_line_keeps_the_rest(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text('{"schema": ' + "\n"          # torn very first line
                        + record_line("aaa") + "\n"
                        + record_line("bbb", "other") + "\n")
        store = ResultStore(path)
        assert len(store) == 2
        assert "aaa" in store and "bbb" in store
        assert store.skipped_lines == 1
        assert store.quarantined == 1

    def test_torn_tail_line(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text(record_line("aaa") + "\n"
                        + record_line("bbb")[:40])    # killed mid-append
        store = ResultStore(path)
        assert len(store) == 1
        assert store.skipped_lines == 1

    def test_partial_record_glued_to_complete_one(self, tmp_path):
        # The signature of an unlocked concurrent append: writer A's torn
        # prefix with writer B's whole record appended on the same line.
        path = tmp_path / "store.jsonl"
        glued = record_line("aaa")[:25] + record_line("bbb", "other")
        path.write_text(glued + "\n")
        store = ResultStore(path)
        assert "bbb" in store                # the intact record is recovered
        assert "aaa" not in store
        assert store.quarantined == 1        # the torn prefix is not lost

    def test_fragments_land_in_corrupt_sidecar(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text("this is not json at all\n" + record_line("aaa") + "\n")
        store = ResultStore(path)
        assert store.quarantine_path.exists()
        assert "not json" in store.quarantine_path.read_text()

    def test_wrong_schema_skipped_but_not_quarantined(self, tmp_path):
        path = tmp_path / "store.jsonl"
        old = json.dumps({"schema": "ancient", "task": "aaa"})
        path.write_text(old + "\n" + record_line("bbb") + "\n")
        store = ResultStore(path)
        assert len(store) == 1
        assert store.skipped_lines == 1
        assert store.quarantined == 0        # valid JSON: old, not corrupt
        assert not store.quarantine_path.exists()

    def test_empty_lines_ignored(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text("\n\n" + record_line("aaa") + "\n\n")
        store = ResultStore(path)
        assert len(store) == 1
        assert store.skipped_lines == 0


class TestConcurrentWriters:
    def test_two_handles_interleave_whole_lines(self, tmp_path):
        path = tmp_path / "store.jsonl"
        first = ResultStore(path)
        second = ResultStore(path)
        first.put("aaa", make_run("a"))
        second.put("bbb", make_run("b"))
        first.put("ccc", make_run("c"))
        reloaded = ResultStore(path)
        assert len(reloaded) == 3
        assert reloaded.skipped_lines == 0

    def test_durable_append_round_trips(self, tmp_path):
        path = tmp_path / "store.jsonl"
        ResultStore(path, durable=True).put("aaa", make_run())
        assert "aaa" in ResultStore(path)


class TestChaosInjection:
    def test_injected_append_failure_raises_before_writing(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        with use_chaos("store_errors=1"):
            with pytest.raises(OSError):
                store.put("aaa", make_run())
            store.put("bbb", make_run())     # next append is healthy
        assert not ResultStore(path).__contains__("aaa")
        assert "bbb" in ResultStore(path)

    def test_schema_guard(self):
        record = run_to_record(make_run(), "fp")
        assert record["schema"] == SCHEMA_VERSION
