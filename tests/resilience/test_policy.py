"""Tests for the retry policy and supervisor (repro.resilience.policy)."""

import pytest

from repro.errors import (
    BackendError,
    BackendUnavailableError,
    CnfError,
    ResourceLimitExceeded,
    is_transient,
)
from repro.resilience import RetryPolicy, Supervisor, no_retry


class TestClassification:
    def test_domain_errors_are_permanent(self):
        assert not is_transient(CnfError("bad clause"))
        assert not is_transient(ValueError("nonsense"))

    def test_infrastructure_errors_are_transient(self):
        assert is_transient(OSError("pipe broke"))
        assert is_transient(MemoryError())
        assert is_transient(BackendError("binary crashed"))
        assert is_transient(ResourceLimitExceeded("rss over ceiling"))

    def test_permanent_mixin_wins_over_transient_base(self):
        # BackendUnavailableError subclasses BackendError (transient) but is
        # marked permanent: a missing binary never fixes itself by retrying.
        assert not is_transient(BackendUnavailableError("no such binary"))

    def test_unknown_exceptions_default_to_permanent(self):
        class Weird(Exception):
            pass

        assert not is_transient(Weird())


class TestRetryPolicy:
    def test_backoff_grows_and_clamps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             backoff_max=0.5, jitter=0.0)
        delays = [policy.delay(attempt) for attempt in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=1.0,
                             backoff_max=10.0, jitter=0.25, seed=7)
        first = policy.delay(1, "task.x")
        assert first == policy.delay(1, "task.x")  # same inputs, same delay
        assert 0.75 <= first <= 1.25
        assert policy.delay(1, "task.y") != first  # keyed jitter

    def test_delay_rejects_nonpositive_attempt(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)

    def test_no_retry_policy(self):
        supervisor = Supervisor(no_retry(), sleep=lambda _: None)
        assert not supervisor.note_failure("k", OSError("transient"))


class TestSupervisor:
    def _supervisor(self, **kwargs):
        slept = []
        policy = RetryPolicy(max_attempts=3, backoff_base=0.01,
                             jitter=0.0, **kwargs)
        return Supervisor(policy, sleep=slept.append), slept

    def test_grants_then_exhausts_attempts(self):
        supervisor, slept = self._supervisor()
        assert supervisor.note_failure("k", OSError())
        assert supervisor.note_failure("k", OSError())
        assert not supervisor.note_failure("k", OSError())  # 3rd attempt
        assert supervisor.retries_granted == 2
        assert supervisor.gave_up == ["k"]
        assert len(slept) == 2

    def test_denies_permanent_errors_immediately(self):
        supervisor, slept = self._supervisor()
        assert not supervisor.note_failure("k", ValueError("permanent"))
        assert supervisor.retries_granted == 0
        assert slept == []

    def test_batch_budget_is_shared_across_keys(self):
        supervisor, _ = self._supervisor(batch_budget=2)
        assert supervisor.note_failure("a", OSError())
        assert supervisor.note_failure("b", OSError())
        assert not supervisor.note_failure("c", OSError())  # budget spent
        assert supervisor.budget_left == 0

    def test_transient_override_for_silent_deaths(self):
        # A SIGKILLed worker leaves no exception object; callers assert
        # transience explicitly.
        supervisor, _ = self._supervisor()
        assert supervisor.note_failure("k", transient=True)

    def test_wait_false_defers_sleep_to_backoff(self):
        supervisor, slept = self._supervisor()
        assert supervisor.note_failure("k", OSError(), wait=False)
        assert slept == []
        supervisor.backoff("k")
        assert len(slept) == 1 and slept[0] > 0

    def test_call_retries_then_reraises(self):
        supervisor, _ = self._supervisor()
        calls = []

        def flaky():
            calls.append(1)
            raise OSError("still broken")

        with pytest.raises(OSError):
            supervisor.call(flaky, "k")
        assert len(calls) == 3  # max_attempts

    def test_call_returns_on_success_after_retry(self):
        supervisor, _ = self._supervisor()
        attempts = []

        def flaky_once():
            attempts.append(1)
            if len(attempts) == 1:
                raise OSError("first time fails")
            return "ok"

        assert supervisor.call(flaky_once, "k") == "ok"
        assert len(attempts) == 2
