"""Tests for resource watchdogs (repro.resilience.watchdog)."""

import pytest

from repro.errors import ResourceLimitExceeded
from repro.resilience import (
    Watchdog,
    current_rss_mb,
    get_watchdog,
    install_worker_limits,
    set_watchdog,
    use_watchdog,
)
from repro.sat.backends import InternalBackend
from repro.sat.solver import solve_cnf
from tests.resilience.helpers import hard_cnf


class TestRssProbe:
    def test_reports_a_plausible_resident_size(self):
        rss = current_rss_mb()
        # A running CPython interpreter needs at least a few MiB; anything
        # enormous means a unit slip (KiB/bytes confusion).
        assert 1.0 < rss < 1 << 20


class TestWatchdog:
    def test_requires_at_least_one_limit(self):
        with pytest.raises(ValueError):
            Watchdog()

    def test_memory_trip_is_memout(self):
        watchdog = Watchdog(mem_limit_mb=100, rss_fn=lambda: 101.0)
        with pytest.raises(ResourceLimitExceeded) as excinfo:
            watchdog.check()
        assert excinfo.value.status == "MEMOUT"

    def test_under_the_ceiling_is_quiet(self):
        Watchdog(mem_limit_mb=100, rss_fn=lambda: 99.0).check()

    def test_deadline_trip_is_timeout(self):
        now = [0.0]
        watchdog = Watchdog(deadline_s=5.0, clock=lambda: now[0])
        watchdog.check()
        now[0] = 5.1
        with pytest.raises(ResourceLimitExceeded) as excinfo:
            watchdog.check()
        assert excinfo.value.status == "TIMEOUT"

    def test_hook_matches_progress_callback_shape(self):
        watchdog = Watchdog(mem_limit_mb=100, rss_fn=lambda: 50.0)
        watchdog.hook(object())  # snapshot is ignored
        watchdog.hook()

    def test_use_watchdog_restores_previous(self):
        outer = Watchdog(mem_limit_mb=1)
        previous = set_watchdog(outer)
        try:
            with use_watchdog(Watchdog(mem_limit_mb=2)) as inner:
                assert get_watchdog() is inner
            assert get_watchdog() is outer
        finally:
            set_watchdog(previous)

    def test_install_worker_limits_noop_without_limit(self):
        previous = set_watchdog(None)
        try:
            install_worker_limits(None)
            assert get_watchdog() is None
            install_worker_limits(0)
            assert get_watchdog() is None
        finally:
            set_watchdog(previous)


class TestSolverIntegration:
    def test_solver_converts_memory_trip_to_memout_result(self):
        # An absurdly low ceiling trips at the first progress sample; the
        # solver must return a clean MEMOUT, not raise.
        with use_watchdog(Watchdog(mem_limit_mb=0.001)):
            result = InternalBackend().solve(hard_cnf())
        assert result.status == "MEMOUT"
        assert result.model is None

    def test_solver_converts_deadline_trip_to_timeout_result(self):
        with use_watchdog(Watchdog(deadline_s=0.0)):
            result = InternalBackend().solve(hard_cnf())
        assert result.status == "TIMEOUT"

    def test_no_watchdog_no_interference(self):
        assert get_watchdog() is None
        result = solve_cnf(hard_cnf())
        assert result.status == "UNSAT"
