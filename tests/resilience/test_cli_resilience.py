"""CLI surface of the resilience layer: flags, warnings, JSON block."""

import json

import pytest

from repro.cli import main
from repro.cnf import parse_dimacs, write_dimacs_file
from repro.runner.cli import main as runner_main


@pytest.fixture
def sat_cnf_file(tmp_path):
    cnf = parse_dimacs("p cnf 3 3\n1 2 0\n-1 3 0\n2 3 0\n")
    return str(write_dimacs_file(cnf, tmp_path / "sat.cnf"))


class TestSolveFlags:
    def test_mem_limit_announced_and_in_json(self, sat_cnf_file, tmp_path,
                                             capsys):
        report = tmp_path / "report.json"
        code = main(["solve", sat_cnf_file, "--mem-limit", "4096",
                     "--json", str(report)])
        assert code == 10
        assert "memory ceiling 4096 MB" in capsys.readouterr().out
        payload = json.loads(report.read_text())
        assert payload["resilience"]["mem_limit_mb"] == 4096
        assert payload["resilience"]["memout"] is False

    def test_resilience_block_always_present(self, sat_cnf_file, tmp_path):
        report = tmp_path / "report.json"
        assert main(["solve", sat_cnf_file, "--json", str(report)]) == 10
        resilience = json.loads(report.read_text())["resilience"]
        assert resilience == {"retries": 0, "fallbacks": 0,
                              "fallback_events": [], "mem_limit_mb": None,
                              "memout": False}

    def test_fallback_from_missing_binary_warns_and_solves(self, sat_cnf_file,
                                                           tmp_path, capsys):
        report = tmp_path / "report.json"
        code = main(["solve", sat_cnf_file, "--backend", "kissat",
                     "--solver-binary", "/nonexistent/kissat",
                     "--fallback", "--json", str(report)])
        out = capsys.readouterr().out
        assert code == 10                          # the fallback solved it
        assert "WARNING" in out and "degraded" in out
        payload = json.loads(report.read_text())
        assert payload["resilience"]["fallbacks"] == 1
        assert payload["resilience"]["fallback_events"]
        assert payload["stats"]["fallbacks"] == 1

    def test_missing_binary_without_fallback_still_fails(self, sat_cnf_file,
                                                         capsys):
        code = main(["solve", sat_cnf_file, "--backend", "kissat",
                     "--solver-binary", "/nonexistent/kissat"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_retries_fallback_rejected_for_portfolio(self, sat_cnf_file,
                                                     capsys):
        code = main(["solve", sat_cnf_file, "--portfolio", "2",
                     "--retries", "2"])
        assert code == 1
        assert "--retries/--fallback" in capsys.readouterr().err

    def test_memout_exit_code_is_zero(self, tmp_path, capsys):
        from repro.benchgen.random_logic import pigeonhole_cnf

        path = tmp_path / "ph6.cnf"
        write_dimacs_file(pigeonhole_cnf(6), path)
        report = tmp_path / "report.json"
        # A ceiling below any real interpreter's footprint trips at the
        # first watchdog sample.
        code = main(["solve", str(path), "--mem-limit", "0.001",
                     "--json", str(report)])
        assert code == 0
        out = capsys.readouterr().out
        assert "s UNKNOWN" in out
        assert "MEMOUT" in out
        payload = json.loads(report.read_text())
        assert payload["status"] == "MEMOUT"
        assert payload["resilience"]["memout"] is True


class TestRunnerFlags:
    def test_retries_and_mem_limit_accepted(self, tmp_path, capsys):
        code = runner_main(["--suite", "test", "--size", "2",
                            "--pipelines", "Baseline",
                            "--retries", "2", "--mem-limit", "4096",
                            "--store", str(tmp_path / "store.jsonl")])
        assert code == 0
        assert "solved" in capsys.readouterr().out

    def test_retries_zero_disables_supervision(self, tmp_path):
        code = runner_main(["--suite", "test", "--size", "1",
                            "--pipelines", "Baseline", "--retries", "0",
                            "--store", str(tmp_path / "store.jsonl")])
        assert code == 0
