"""Shared fixtures of the resilience suite: conflict-heavy instances.

Fault-injection points keyed on solver progress (watchdog samples, chaos
kill thresholds) only fire while the solver is actually in conflict; a
formula solved in a handful of conflicts never reaches them.  The
pigeonhole family is the canonical dense-conflict UNSAT workload:
``pigeonhole_cnf(6)`` burns ~750 conflicts in well under a second, and
``pigeonhole_cnf(7)`` ~5000 conflicts in about a second — long enough for
cross-process races to land deterministically.
"""

from __future__ import annotations

from repro.benchgen.random_logic import pigeonhole_cnf


def hard_cnf():
    """UNSAT with enough conflicts to cross every sampling interval."""
    return pigeonhole_cnf(6)


def harder_cnf():
    """UNSAT taking ~1 s to solve — for races against worker deaths."""
    return pigeonhole_cnf(7)
