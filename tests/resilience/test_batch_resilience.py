"""Fault-injection tests for the supervised batch runner.

These run real worker pools against the chaos harness: workers are
SIGKILLed mid-task, store appends fail, tasks OOM — and the batch must
still return a terminal status for every task without losing a record.
Faults reach pool workers through the ``REPRO_CHAOS`` environment variable
(it crosses ``fork``/``spawn``); one-shot behaviour is coordinated through
a flags directory so "crash the first execution, let the retry succeed"
is expressible.
"""

import multiprocessing

import pytest

from repro.obs import read_trace, use_tracer, Tracer
from repro.resilience import RetryPolicy, Supervisor
from repro.resilience.chaos import CHAOS_ENV, use_chaos
from repro.runner import BatchRunner, ResultStore, Task

from tests.helpers import random_aig

_FORK = multiprocessing.get_start_method(allow_none=False) == "fork"


def small_tasks(count=5, prefix="inst"):
    tasks = []
    for index in range(count):
        aig = random_aig(num_pis=4, num_nodes=14, seed=index)
        tasks.append(Task.from_aig(aig, "Baseline",
                                   instance_name=f"{prefix}-{index}",
                                   time_limit=10.0))
    return tasks


def quiet_supervisor(max_attempts=3):
    return Supervisor(RetryPolicy(max_attempts=max_attempts,
                                  backoff_base=0.001, jitter=0.0),
                      sleep=lambda _: None)


class TestWorkerDeath:
    def test_sigkilled_worker_mid_task_batch_completes(self, tmp_path,
                                                       monkeypatch):
        """The acceptance scenario: one worker is SIGKILLed mid-task; the

        pool is rebuilt, every task ends terminal and no record is lost."""
        flags = tmp_path / "flags"
        monkeypatch.setenv(CHAOS_ENV, f"kill_task=victim-3,flags={flags}")
        store = ResultStore(tmp_path / "store.jsonl")
        supervisor = quiet_supervisor()
        runner = BatchRunner(jobs=3, store=store, supervisor=supervisor)
        report = runner.run(small_tasks(6, prefix="victim"))
        assert [run.status for run in report.runs].count("SAT") \
            + [run.status for run in report.runs].count("UNSAT") == 6
        assert len(store) == 6                       # zero lost records
        assert supervisor.retries_granted >= 1       # the rebuild happened

    def test_unrelenting_killer_yields_terminal_error(self, tmp_path,
                                                      monkeypatch):
        # No flags dir: the fault fires on every retry until the budget is
        # spent; the victim must end as ERROR, the others must complete.
        monkeypatch.setenv(CHAOS_ENV, "kill_task=victim-1")
        supervisor = quiet_supervisor(max_attempts=2)
        runner = BatchRunner(jobs=2, supervisor=supervisor)
        report = runner.run(small_tasks(4, prefix="victim"))
        statuses = {run.instance_name: run.status for run in report.runs}
        assert statuses["victim-1"] == "ERROR"
        assert all(status in ("SAT", "UNSAT")
                   for name, status in statuses.items() if name != "victim-1")
        assert "task." in supervisor.gave_up[0]

    def test_worker_death_emits_obs_events_and_counters(self, tmp_path,
                                                        monkeypatch):
        flags = tmp_path / "flags"
        monkeypatch.setenv(CHAOS_ENV, f"kill_task=victim-2,flags={flags}")
        trace_path = tmp_path / "trace.jsonl"
        tracer = Tracer(trace_path)
        with use_tracer(tracer):
            BatchRunner(jobs=2, supervisor=quiet_supervisor()).run(
                small_tasks(4, prefix="victim"))
        tracer.close()
        records = read_trace(trace_path)
        events = {record.get("name") for record in records
                  if record.get("type") == "event"}
        assert "pool_rebuild" in events
        counters = {}
        for record in records:
            if record.get("type") == "metrics":
                counters.update(record.get("counters", {}))
        assert counters["resilience.worker_deaths"]["value"] >= 1
        assert counters["resilience.pool_rebuilds"]["value"] >= 1
        assert counters["resilience.retries"]["value"] >= 1


class TestStoreFaults:
    def test_injected_store_failures_lose_no_records(self, tmp_path,
                                                     monkeypatch):
        # Appends fail twice; the per-append retry loop absorbs both and
        # every record still lands on disk.
        monkeypatch.setenv(CHAOS_ENV, "store_errors=2")
        store = ResultStore(tmp_path / "store.jsonl")
        report = BatchRunner(jobs=1, store=store).run(small_tasks(4))
        assert all(run.status in ("SAT", "UNSAT") for run in report.runs)
        assert len(ResultStore(tmp_path / "store.jsonl")) == 4

    def test_unpersistable_result_stays_in_the_batch(self, tmp_path):
        # More injected failures than retry attempts: the record is dropped
        # from the cache but the batch still returns the result.
        store = ResultStore(tmp_path / "store.jsonl")
        with use_chaos("store_errors=100"):
            report = BatchRunner(jobs=1, store=store).run(small_tasks(2))
        assert all(run.status in ("SAT", "UNSAT") for run in report.runs)
        assert len(ResultStore(tmp_path / "store.jsonl")) == 0


class TestResourceFaults:
    def test_injected_oom_becomes_memout_run(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "oom_task=victim-0")
        store = ResultStore(tmp_path / "store.jsonl")
        report = BatchRunner(jobs=1, store=store).run(
            small_tasks(3, prefix="victim"))
        statuses = {run.instance_name: run.status for run in report.runs}
        assert statuses["victim-0"] == "MEMOUT"
        # MEMOUT is limit-dependent and must not be cached.
        assert len(store) == 2

    @pytest.mark.skipif(not _FORK, reason="needs fork start method")
    def test_mem_limit_threads_through_pool_workers(self, tmp_path):
        report = BatchRunner(jobs=2, mem_limit_mb=4096).run(small_tasks(3))
        assert all(run.status in ("SAT", "UNSAT") for run in report.runs)


class TestInlineSupervision:
    def test_transient_task_fault_is_retried_inline(self, tmp_path,
                                                    monkeypatch):
        flags = tmp_path / "flags"
        monkeypatch.setenv(CHAOS_ENV, f"fail_task=victim-1,flags={flags}")
        report = BatchRunner(jobs=1, supervisor=quiet_supervisor()).run(
            small_tasks(3, prefix="victim"))
        assert all(run.status in ("SAT", "UNSAT") for run in report.runs)

    def test_without_supervisor_fault_is_terminal(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "fail_task=victim-1")
        report = BatchRunner(jobs=1).run(small_tasks(3, prefix="victim"))
        statuses = {run.instance_name: run.status for run in report.runs}
        assert statuses["victim-1"] == "ERROR"
