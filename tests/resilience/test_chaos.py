"""Tests for the chaos harness itself (repro.resilience.chaos)."""

import pytest

from repro.errors import BackendUnavailableError
from repro.resilience.chaos import (
    CHAOS_ENV,
    NULL_CHAOS,
    ChaosMonkey,
    ChaosSpec,
    format_spec,
    get_chaos,
    parse_spec,
    use_chaos,
)


class TestSpecParsing:
    def test_round_trip(self):
        spec = ChaosSpec(kill_workers=(0, 2), kill_after_conflicts=50,
                         kill_task="ph6", store_errors=2,
                         backend_garbage=True, delay_s=0.05,
                         flags_dir="/tmp/flags", seed=3)
        assert parse_spec(format_spec(spec)) == spec

    def test_kill_worker_syntax(self):
        spec = parse_spec("kill_worker=1|3@25")
        assert spec.kill_workers == (1, 3)
        assert spec.kill_after_conflicts == 25

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            parse_spec("explode=yes")

    def test_empty_spec(self):
        assert parse_spec("") == ChaosSpec()


class TestInjectionPoints:
    def test_fail_task_matches_by_substring(self):
        monkey = ChaosMonkey("fail_task=ph6")
        monkey.on_task_start("other-instance")  # no match, no fault
        with pytest.raises(OSError):
            monkey.on_task_start("suite/ph6/baseline")

    def test_oom_task_raises_memory_error(self):
        monkey = ChaosMonkey("oom_task=big")
        with pytest.raises(MemoryError):
            monkey.on_task_start("big-instance")

    def test_store_errors_count_down(self):
        monkey = ChaosMonkey("store_errors=2")
        with pytest.raises(OSError):
            monkey.on_store_append("store.jsonl")
        with pytest.raises(OSError):
            monkey.on_store_append("store.jsonl")
        monkey.on_store_append("store.jsonl")  # third append succeeds

    def test_backend_missing(self):
        monkey = ChaosMonkey("backend_missing=1")
        with pytest.raises(BackendUnavailableError):
            monkey.on_backend_spawn("kissat")

    def test_backend_garbage_mangles_output(self):
        monkey = ChaosMonkey("backend_garbage=1")
        mangled = monkey.mangle_backend_output("kissat", "s SATISFIABLE\n")
        assert "SATISFIABLE" not in mangled

    def test_progress_killer_only_for_selected_workers(self):
        monkey = ChaosMonkey("kill_worker=1@50")
        assert monkey.progress_killer(0) is None
        assert callable(monkey.progress_killer(1))


class TestOneShotFlags:
    def test_fault_fires_once_with_flags_dir(self, tmp_path):
        monkey = ChaosMonkey(f"fail_task=ph6,flags={tmp_path}")
        with pytest.raises(OSError):
            monkey.on_task_start("ph6")
        monkey.on_task_start("ph6")  # latched: the retry succeeds

    def test_flags_are_cross_instance(self, tmp_path):
        # Two monkeys sharing a flags dir model two processes sharing it.
        first = ChaosMonkey(f"fail_task=ph6,flags={tmp_path}")
        second = ChaosMonkey(f"fail_task=ph6,flags={tmp_path}")
        with pytest.raises(OSError):
            first.on_task_start("ph6")
        second.on_task_start("ph6")


class TestActivation:
    def test_default_is_null(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        assert get_chaos() is NULL_CHAOS

    def test_env_spec_is_parsed_and_cached(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "store_errors=1")
        monkey = get_chaos()
        assert monkey.spec.store_errors == 1
        # Same spec text returns the same instance, preserving counters.
        assert get_chaos() is monkey

    def test_malformed_env_spec_degrades_to_null(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "bogus_key=1")
        assert not get_chaos().enabled

    def test_use_chaos_wins_over_env_and_restores(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "store_errors=1")
        with use_chaos("delay=0.5") as monkey:
            assert get_chaos() is monkey
        assert get_chaos().spec.store_errors == 1

    def test_null_chaos_hooks_are_noops(self):
        NULL_CHAOS.on_task_start("x")
        NULL_CHAOS.on_store_append("p")
        NULL_CHAOS.on_backend_spawn("b")
        assert NULL_CHAOS.progress_killer(0) is None
        assert NULL_CHAOS.mangle_backend_output("b", "out") == "out"
