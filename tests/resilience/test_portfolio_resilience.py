"""Chaos tests for the parallel portfolio: dead workers, degraded verdicts.

The heavyweight races live behind the ``chaos`` marker (run with
``pytest -m chaos``): each one forks a real portfolio, SIGKILLs workers
mid-search through the ``REPRO_CHAOS`` environment variable and asserts
the verdict still lands.  A fast smoke stays in tier-1.
"""

import multiprocessing

import pytest

from repro.resilience.chaos import CHAOS_ENV
from repro.sat.configs import kissat_like
from repro.sat.portfolio import solve_portfolio

from tests.resilience.helpers import hard_cnf, harder_cnf

_FORK = multiprocessing.get_start_method(allow_none=False) == "fork"

needs_fork = pytest.mark.skipif(
    not _FORK, reason="portfolio chaos tests need the fork start method")


@needs_fork
class TestWorkerDeath:
    def test_survivors_return_the_verdict(self, monkeypatch):
        """Tier-1 smoke: one of two workers dies; the race still concludes.

        The instance must outlive the kill threshold by a wide margin, or
        the survivor can win before the victim's death is even noticed."""
        monkeypatch.setenv(CHAOS_ENV, "kill_worker=0@50")
        result = solve_portfolio(harder_cnf(), num_workers=2,
                                 base_config=kissat_like())
        assert result.result.status == "UNSAT"
        dead = [w for w in result.workers if w.status == "ERROR"]
        assert len(dead) == 1 and dead[0].index == 0
        assert "died" in dead[0].error

    @pytest.mark.chaos
    def test_half_killed_portfolio_still_decides(self, monkeypatch):
        """The acceptance scenario: half the workers are SIGKILLed
        mid-search and the portfolio still returns the correct verdict."""
        monkeypatch.setenv(CHAOS_ENV, "kill_worker=0|1@50")
        result = solve_portfolio(harder_cnf(), num_workers=4,
                                 base_config=kissat_like())
        assert result.result.status == "UNSAT"
        statuses = {w.index: w.status for w in result.workers}
        assert statuses[0] == "ERROR" and statuses[1] == "ERROR"

    @pytest.mark.chaos
    def test_all_workers_dead_degrades_to_sequential(self, monkeypatch):
        """Last rung of the ladder: every worker lost, one in-process
        sequential solve still produces the verdict."""
        monkeypatch.setenv(CHAOS_ENV, "kill_worker=0|1@50")
        result = solve_portfolio(hard_cnf(), num_workers=2,
                                 base_config=kissat_like())
        assert result.result.status == "UNSAT"
        assert result.winner is not None
        assert result.winner.endswith("+seq-fallback")

    @pytest.mark.chaos
    def test_sequential_fallback_can_be_disabled(self, monkeypatch):
        from repro.errors import SolverError

        monkeypatch.setenv(CHAOS_ENV, "kill_worker=0|1@50")
        with pytest.raises(SolverError):
            solve_portfolio(hard_cnf(), num_workers=2,
                            base_config=kissat_like(),
                            sequential_fallback=False)
