"""Tests for backend degradation: FallbackBackend and worker shedding."""

import pytest

from repro.cnf import parse_dimacs
from repro.errors import BackendError, BackendUnavailableError
from repro.resilience import RetryPolicy, Supervisor
from repro.resilience.chaos import use_chaos
from repro.sat.backends import (
    FallbackBackend,
    InternalBackend,
    SubprocessBackend,
    ensure_available,
)


def tiny_cnf():
    return parse_dimacs("p cnf 3 3\n1 2 0\n-1 3 0\n2 3 0\n")


class FlakyBackend:
    """A scriptable primary: raises the queued errors, then solves."""

    name = "flaky"

    def __init__(self, errors):
        self.errors = list(errors)
        self.calls = 0

    def available(self):
        return True

    def solve(self, cnf, **kwargs):
        self.calls += 1
        if self.errors:
            raise self.errors.pop(0)
        return InternalBackend().solve(cnf, **kwargs)


def quiet_supervisor(max_attempts=3):
    return Supervisor(RetryPolicy(max_attempts=max_attempts,
                                  backoff_base=0.001, jitter=0.0),
                      sleep=lambda _: None)


class TestFallbackBackend:
    def test_healthy_primary_is_untouched(self):
        primary = FlakyBackend([])
        backend = FallbackBackend(primary, fallback=InternalBackend())
        result = backend.solve(tiny_cnf())
        assert result.status == "SAT"
        assert backend.fallbacks == 0
        assert result.stats.fallbacks == 0

    def test_transient_failure_retried_then_primary_wins(self):
        primary = FlakyBackend([BackendError("crashed once")])
        backend = FallbackBackend(primary, fallback=InternalBackend(),
                                  supervisor=quiet_supervisor())
        result = backend.solve(tiny_cnf())
        assert result.status == "SAT"
        assert primary.calls == 2
        assert backend.fallbacks == 0

    def test_exhausted_retries_degrade_to_fallback(self):
        primary = FlakyBackend([BackendError("crash")] * 10)
        backend = FallbackBackend(primary, fallback=InternalBackend(),
                                  supervisor=quiet_supervisor(max_attempts=2))
        result = backend.solve(tiny_cnf())
        assert result.status == "SAT"
        assert backend.fallbacks == 1
        assert result.stats.fallbacks == 1     # visible in stored stats
        assert backend.events                  # CLI warning material

    def test_permanent_failure_degrades_immediately(self):
        primary = FlakyBackend([BackendUnavailableError("no binary")])
        backend = FallbackBackend(primary, fallback=InternalBackend(),
                                  supervisor=quiet_supervisor())
        result = backend.solve(tiny_cnf())
        assert result.status == "SAT"
        assert primary.calls == 1              # no pointless retries
        assert backend.fallbacks == 1

    def test_without_fallback_the_error_propagates(self):
        primary = FlakyBackend([BackendError("crash")] * 10)
        backend = FallbackBackend(primary,
                                  supervisor=quiet_supervisor(max_attempts=2))
        with pytest.raises(BackendError):
            backend.solve(tiny_cnf())

    def test_name_mirrors_primary(self):
        backend = FallbackBackend(FlakyBackend([]), fallback=InternalBackend())
        assert backend.name == "flaky"

    def test_ensure_available_accepts_reachable_fallback(self):
        missing = SubprocessBackend("definitely-not-a-solver-7f3a")
        backend = FallbackBackend(missing, fallback=InternalBackend())
        assert backend.available()
        ensure_available(backend)              # must not raise

    def test_ensure_available_rejects_when_both_missing(self):
        missing = SubprocessBackend("definitely-not-a-solver-7f3a")
        backend = FallbackBackend(missing)
        with pytest.raises(BackendUnavailableError):
            ensure_available(backend)


class TestChaosBackendFaults:
    def test_injected_missing_binary_falls_back(self):
        # The chaos hook fires inside SubprocessBackend._solve, after the
        # availability probe — modelling a binary that vanishes mid-run.
        primary = InternalBackend()
        with use_chaos("backend_missing=1"):
            backend = FallbackBackend(
                _ChaosSpawnBackend(), fallback=primary,
                supervisor=quiet_supervisor(max_attempts=2))
            result = backend.solve(tiny_cnf())
        assert result.status == "SAT"
        assert backend.fallbacks == 1


class _ChaosSpawnBackend:
    """Primary whose solve consults the chaos spawn hook, like the real
    subprocess backend does."""

    name = "chaos-spawn"

    def available(self):
        return True

    def solve(self, cnf, **kwargs):
        from repro.resilience.chaos import get_chaos

        get_chaos().on_backend_spawn(self.name)
        return InternalBackend().solve(cnf, **kwargs)
