"""Tests for the CDCL solver: correctness, budgets, statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen import pigeonhole_cnf as _pigeonhole_cnf
from repro.benchgen import random_cnf as _random_cnf
from repro.cnf import Cnf, tseitin_encode
from repro.errors import SolverError
from repro.sat import (
    CdclSolver,
    SolverConfig,
    cadical_like,
    dpll_solve,
    kissat_like,
    solve_cnf,
)
from repro.sat.solver import _luby
from tests.helpers import random_aig, ripple_adder_aig


class TestBasicCases:
    def test_trivial_sat(self):
        cnf = Cnf(1)
        cnf.add_clause([1])
        result = solve_cnf(cnf)
        assert result.is_sat
        assert result.model[1] is True

    def test_trivial_unsat(self):
        cnf = Cnf(1)
        cnf.add_clause([1])
        cnf.add_clause([-1])
        assert solve_cnf(cnf).is_unsat

    def test_empty_formula_is_sat(self):
        assert solve_cnf(Cnf(3)).is_sat

    def test_unit_chain(self):
        cnf = Cnf(4)
        cnf.add_clause([1])
        cnf.add_clause([-1, 2])
        cnf.add_clause([-2, 3])
        cnf.add_clause([-3, 4])
        result = solve_cnf(cnf)
        assert result.is_sat
        assert all(result.model[v] for v in range(1, 5))

    def test_model_satisfies_formula(self):
        cnf = _random_cnf(num_vars=15, num_clauses=40, seed=3)
        result = solve_cnf(cnf)
        if result.is_sat:
            assert cnf.evaluate(result.model)

    def test_xor_constraints(self):
        # x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 1 is unsatisfiable.
        cnf = Cnf(3)
        for a, b in ((1, 2), (2, 3), (1, 3)):
            cnf.add_clause([a, b])
            cnf.add_clause([-a, -b])
        assert solve_cnf(cnf).is_unsat

    def test_pigeonhole_unsat(self):
        assert solve_cnf(_pigeonhole_cnf(4)).is_unsat

    def test_out_of_range_literal_rejected(self):
        cnf = Cnf(2)
        cnf.add_clause([1, 2])
        cnf.num_vars = 1  # corrupt on purpose
        with pytest.raises(SolverError):
            CdclSolver(cnf)

    def test_tautological_clause_ignored(self):
        cnf = Cnf(2)
        cnf.add_clause([1, -1])
        cnf.add_clause([2])
        result = solve_cnf(cnf)
        assert result.is_sat
        assert result.model[2] is True


class TestAgainstDpll:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_3sat_agreement(self, seed):
        cnf = _random_cnf(num_vars=12, num_clauses=50, seed=seed)
        expected_status, _ = dpll_solve(cnf)
        result = solve_cnf(cnf)
        assert result.status == expected_status
        if result.is_sat:
            assert cnf.evaluate(result.model)

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=40, deadline=None)
    def test_random_agreement_property(self, seed):
        rng = np.random.default_rng(seed)
        num_vars = int(rng.integers(4, 12))
        num_clauses = int(rng.integers(num_vars, 5 * num_vars))
        cnf = _random_cnf(num_vars=num_vars, num_clauses=num_clauses, seed=seed + 1)
        expected_status, _ = dpll_solve(cnf)
        result = solve_cnf(cnf)
        assert result.status == expected_status

    def test_dpll_rejects_large_instances(self):
        with pytest.raises(SolverError):
            dpll_solve(_random_cnf(num_vars=60, num_clauses=10, seed=0))


class TestCircuitInstances:
    def test_adder_miter_unsat(self):
        # An adder XOR-ed against itself must be unsatisfiable.
        from repro.aig import AIG

        adder = ripple_adder_aig(width=3)
        miter = AIG(name="self_miter")
        inputs = [miter.add_pi() for _ in range(adder.num_pis)]

        def instantiate(target):
            mapping = {0: 0}
            for pi, literal in zip(adder.pis, inputs):
                mapping[pi] = literal
            for var in adder.and_vars():
                lit0, lit1 = adder.fanins(var)
                new0 = mapping[lit0 >> 1] ^ (lit0 & 1)
                new1 = mapping[lit1 >> 1] ^ (lit1 & 1)
                mapping[var] = target.add_and(new0, new1)
            return [mapping[po >> 1] ^ (po & 1) for po in adder.pos]

        first = instantiate(miter)
        second = instantiate(miter)
        differences = [miter.add_xor(a, b) for a, b in zip(first, second)]
        miter.add_po(miter.add_or_multi(differences))
        cnf = tseitin_encode(miter)
        assert solve_cnf(cnf).is_unsat

    def test_random_circuit_sat_instances(self):
        # A random circuit output clause is almost always satisfiable; verify
        # the model against the circuit.
        from repro.aig.simulate import evaluate

        aig = random_aig(num_pis=6, num_nodes=40, seed=5)
        cnf = tseitin_encode(aig, output_mode="any")
        result = solve_cnf(cnf)
        if result.is_sat:
            bits = [result.model[cnf.var_map[pi]] for pi in aig.pis]
            assert any(evaluate(aig, bits))


class TestBudgetsAndStats:
    def test_conflict_budget_returns_unknown(self):
        cnf = _pigeonhole_cnf(5)
        result = solve_cnf(cnf, max_conflicts=5)
        assert result.status in ("UNKNOWN", "UNSAT")

    def test_decision_budget_returns_unknown(self):
        cnf = _pigeonhole_cnf(5)
        result = solve_cnf(cnf, max_decisions=3)
        assert result.status in ("UNKNOWN", "UNSAT")

    def test_time_limit_returns_quickly(self):
        cnf = _pigeonhole_cnf(7)
        result = solve_cnf(cnf, time_limit=0.05)
        assert result.status in ("UNKNOWN", "UNSAT")
        assert result.stats.solve_time < 5.0

    def test_stats_populated(self):
        cnf = _pigeonhole_cnf(4)
        result = solve_cnf(cnf)
        assert result.stats.decisions > 0
        assert result.stats.conflicts > 0
        assert result.stats.propagations > 0
        assert result.stats.solve_time >= 0.0

    def test_decisions_counted_for_easy_sat(self):
        cnf = _random_cnf(num_vars=20, num_clauses=40, seed=9)
        result = solve_cnf(cnf)
        assert result.stats.decisions >= 0
        stats_dict = result.stats.as_dict()
        assert set(stats_dict) >= {"decisions", "conflicts", "propagations"}


class TestConfigs:
    def test_presets_have_distinct_behaviour_knobs(self):
        kissat = kissat_like()
        cadical = cadical_like()
        assert kissat.name != cadical.name
        assert (kissat.restart_interval != cadical.restart_interval
                or kissat.restart_strategy != cadical.restart_strategy)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SolverConfig(var_decay=0.0)
        with pytest.raises(ValueError):
            SolverConfig(restart_strategy="chaotic")
        with pytest.raises(ValueError):
            SolverConfig(restart_interval=0)

    @pytest.mark.parametrize("config_factory", [kissat_like, cadical_like])
    def test_presets_solve_correctly(self, config_factory):
        config = config_factory()
        for seed in range(4):
            cnf = _random_cnf(num_vars=10, num_clauses=45, seed=seed)
            expected_status, _ = dpll_solve(cnf)
            assert solve_cnf(cnf, config=config).status == expected_status

    def test_no_restart_strategy(self):
        config = SolverConfig(restart_strategy="none")
        cnf = _pigeonhole_cnf(4)
        result = solve_cnf(cnf, config=config)
        assert result.is_unsat
        assert result.stats.restarts == 0


class TestLuby:
    def test_prefix(self):
        expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        assert [_luby(i) for i in range(len(expected))] == expected
