"""Assumption threading through the backend abstraction.

The internal backend forwards assumptions natively to the incremental
solver; the subprocess backend falls back to a per-call re-encode (each
assumption appended as a unit clause) and can only report the trivial
core.
"""

import os
import stat
import textwrap

from repro.cnf import Cnf
from repro.sat.backends import InternalBackend, SubprocessBackend
from repro.sat.solver import CdclSolver


def _chain_cnf() -> Cnf:
    cnf = Cnf(3)
    cnf.add_clause([-1, 2])
    cnf.add_clause([-2, 3])
    return cnf


def _fake_solver(tmp_path, name, body):
    path = tmp_path / name
    path.write_text(textwrap.dedent(body))
    path.chmod(path.stat().st_mode | stat.S_IXUSR)
    return str(path)


class TestInternalBackendAssumptions:
    def test_assumptions_flow_through(self):
        backend = InternalBackend()
        result = backend.solve(_chain_cnf(), assumptions=[1, -3])
        assert result.is_unsat
        assert set(result.core) == {1, -3}

    def test_sat_under_assumptions(self):
        result = InternalBackend().solve(_chain_cnf(), assumptions=[1])
        assert result.is_sat and result.model[3]

    def test_incremental_session(self):
        solver = InternalBackend().incremental(_chain_cnf())
        assert isinstance(solver, CdclSolver)
        assert solver.solve(assumptions=[1]).is_sat
        solver.add_clause([-3])
        assert solver.solve(assumptions=[1]).is_unsat


class TestSubprocessBackendAssumptions:
    def test_unit_reencode_reaches_the_binary(self, tmp_path):
        # The fake solver counts the clauses it was handed and answers SAT
        # with the all-false model (which satisfies the implication chain);
        # three assumptions must appear as three extra unit clauses.
        binary = _fake_solver(tmp_path, "fake-counting", """\
            #!/usr/bin/env python3
            import sys
            clauses = 0
            for line in open(sys.argv[-1]):
                line = line.strip()
                if line and not line.startswith(("c", "p")):
                    clauses += line.split().count("0")
            print(f"c clauses seen: {clauses}")
            print("s SATISFIABLE")
            print("v -1 -2 -3 0")
            sys.exit(10)
        """)
        backend = SubprocessBackend("fake", binary=binary)
        result = backend.solve(_chain_cnf(), assumptions=[-1, -2, -3])
        assert result.is_sat
        # The model must be verified against the *constrained* formula, so a
        # model violating an assumption unit would have raised BackendError.
        assert result.model == {1: False, 2: False, 3: False}

    def test_unsat_reports_trivial_core(self, tmp_path):
        binary = _fake_solver(tmp_path, "fake-unsat", """\
            #!/usr/bin/env python3
            import sys
            print("s UNSATISFIABLE")
            sys.exit(20)
        """)
        backend = SubprocessBackend("fake", binary=binary)
        result = backend.solve(_chain_cnf(), assumptions=[1, -3])
        assert result.is_unsat
        assert result.core == [1, -3]

    def test_unsat_without_assumptions_has_empty_core(self, tmp_path):
        binary = _fake_solver(tmp_path, "fake-unsat2", """\
            #!/usr/bin/env python3
            import sys
            print("s UNSATISFIABLE")
            sys.exit(20)
        """)
        result = SubprocessBackend("fake", binary=binary).solve(_chain_cnf())
        assert result.is_unsat
        assert result.core == []
