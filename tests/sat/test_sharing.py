"""Tests for clause sharing: export filters, bus semantics, edge cases.

The multiprocess :class:`ClauseBus` is exercised both in-process (through a
shim context whose queues are plain ``queue.Queue``, so pump timing is
deterministic) and end-to-end through ``solve_portfolio(sharing=True)``,
including the chaos scenario where a worker is SIGKILLed mid-export.
"""

import multiprocessing
import queue

import pytest

from repro.benchgen.random_logic import pigeonhole_cnf
from repro.cnf.cnf import Cnf
from repro.errors import SolverError
from repro.resilience.chaos import CHAOS_ENV
from repro.sat.configs import cadical_like, kissat_like
from repro.sat.portfolio import solve_portfolio
from repro.sat.proof import check_drat_file
from repro.sat.sharing import (
    ClauseBus,
    SharingConfig,
    interleaved_sharing_race,
)
from repro.sat.solver import CdclSolver, ClauseExportHook, solve_cnf

from tests.resilience.helpers import harder_cnf

_FORK = multiprocessing.get_start_method(allow_none=False) == "fork"

needs_fork = pytest.mark.skipif(
    not _FORK, reason="portfolio chaos tests need the fork start method")


class _InlineQueue(queue.Queue):
    """``queue.Queue`` with the multiprocessing-queue lifecycle methods."""

    def close(self) -> None:
        pass

    def cancel_join_thread(self) -> None:
        pass


class _InlineContext:
    """A multiprocessing-context stand-in backed by synchronous queues."""

    @staticmethod
    def Queue(maxsize: int = 0):
        return _InlineQueue(maxsize=maxsize)


# --------------------------------------------------------------------- #
# Configuration and export filtering


class TestSharingConfig:
    @pytest.mark.parametrize("kwargs", [
        {"max_len": 0},
        {"max_lbd": 0},
        {"import_queue_size": 0},
        {"pump_batch": 0},
        {"export_budget": -1},
        {"import_max_len": 0},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(SolverError):
            SharingConfig(**kwargs)


class TestClauseExportHook:
    def test_filters_long_and_high_lbd_clauses(self):
        sunk = []
        hook = ClauseExportHook(lambda c, l: sunk.append(c),
                                max_len=3, max_lbd=2)
        assert hook((1, 2), 1)
        assert not hook((1, 2, 3, 4), 1)   # too long
        assert not hook((1, 2), 5)         # too much glue
        assert sunk == [(1, 2)]
        assert hook.exported == 1
        assert hook.filtered == 2

    def test_budget_caps_total_exports(self):
        hook = ClauseExportHook(lambda c, l: None, budget=2)
        assert hook((1,), 1) and hook((2,), 1)
        assert not hook((3,), 1)
        assert hook.exported == 2


# --------------------------------------------------------------------- #
# ClauseBus semantics (deterministic in-process queues)


class TestClauseBus:
    def _bus(self, workers=3, **kwargs):
        return ClauseBus(workers, SharingConfig(**kwargs), _InlineContext())

    def test_needs_two_workers(self):
        with pytest.raises(SolverError):
            ClauseBus(1, SharingConfig(), _InlineContext())

    def test_broadcasts_to_all_but_source(self):
        bus = self._bus(3)
        bus.endpoint(0)._export((1, 2), 1)
        assert bus.pump() == 1
        assert bus.counters() == \
            {"exported": 1, "imported": 2, "filtered": 0}
        assert bus.endpoint(1)._drain() == [((1, 2), 1)]
        assert bus.endpoint(2)._drain() == [((1, 2), 1)]
        assert bus.endpoint(0)._drain() == []

    def test_duplicates_filtered_globally(self):
        bus = self._bus(2)
        bus.endpoint(0)._export((1, 2), 1)
        bus.endpoint(1)._export((2, 1), 2)  # same clause, other worker
        bus.pump()
        counters = bus.counters()
        assert counters["exported"] == 2
        assert counters["filtered"] == 1
        assert counters["imported"] == 1

    def test_import_overflow_drops_not_blocks(self):
        bus = self._bus(2, import_queue_size=1)
        bus.endpoint(0)._export((1,), 1)
        bus.endpoint(0)._export((2,), 1)
        bus.pump()
        counters = bus.counters()
        assert counters["imported"] == 1
        assert counters["filtered"] == 1  # overflow drop

    def test_pump_batch_bounds_one_pump(self):
        bus = self._bus(2, pump_batch=1)
        bus.endpoint(0)._export((1,), 1)
        bus.endpoint(0)._export((2,), 1)
        assert bus.pump() == 1
        assert bus.pump() == 1
        assert bus.pump() == 0

    def test_close_after_traffic(self):
        bus = self._bus(2)
        bus.endpoint(0)._export((1,), 1)
        bus.close()


# --------------------------------------------------------------------- #
# Import edge cases at the restart boundary (level-0 simplification)


def _import_probe(cnf, imports, max_len: int = 32):
    """A solver whose import source hands out ``imports`` exactly once.

    Imports are drained at the start of :meth:`CdclSolver.solve` (and at
    every restart boundary), with the trail at level 0 — so the outcome of
    each edge case below is deterministic, not restart-timing dependent.
    """
    solver = CdclSolver(cnf, config=kissat_like())
    pending = [list(imports)]
    solver.set_import_source(lambda: pending.pop() if pending else [],
                             max_len=max_len)
    return solver


class TestImportEdgeCases:
    def test_clause_satisfied_at_level_zero_is_dropped(self):
        cnf = pigeonhole_cnf(3)
        cnf.add_clause([1])  # level-0 unit: pigeon 0 sits in hole 0
        solver = _import_probe(cnf, [((1, 4), 1)])
        result = solver.solve()
        assert result.status == "UNSAT"
        assert solver.stats.import_filtered >= 1
        assert solver.stats.imported_clauses == 0

    def test_clause_falsified_at_level_zero_concludes_unsat(self):
        # Units 1 and 5 hold at level 0; the imported (-1 -5) simplifies to
        # the empty clause.  An import is a consequence of the formula, so
        # the solver concludes UNSAT on the spot — before any search.
        cnf = pigeonhole_cnf(3)
        cnf.add_clause([1])
        cnf.add_clause([5])
        solver = _import_probe(cnf, [((-1, -5), 1)])
        result = solver.solve()
        assert result.status == "UNSAT"
        assert result.core == []
        assert solver.stats.conflicts == 0  # the import alone concluded it

    def test_duplicate_imports_filtered(self):
        cnf = pigeonhole_cnf(3)
        solver = _import_probe(cnf, [((1, 4), 2), ((4, 1), 2)])
        result = solver.solve()
        assert result.status == "UNSAT"
        assert solver.stats.imported_clauses == 1
        assert solver.stats.import_filtered == 1

    def test_oversized_imports_filtered(self):
        cnf = pigeonhole_cnf(3)
        solver = _import_probe(cnf, [(tuple(range(1, 13)), 2)], max_len=4)
        result = solver.solve()
        assert result.status == "UNSAT"
        assert solver.stats.import_filtered == 1
        assert solver.stats.imported_clauses == 0

    def test_unit_import_enqueued_at_level_zero(self):
        cnf = pigeonhole_cnf(3)
        solver = _import_probe(cnf, [((1,), 1)])
        result = solver.solve()
        assert result.status == "UNSAT"
        assert solver.stats.imported_clauses == 1

    def test_tautological_import_filtered(self):
        cnf = pigeonhole_cnf(3)
        solver = _import_probe(cnf, [((1, -1), 1)])
        result = solver.solve()
        assert result.status == "UNSAT"
        assert solver.stats.import_filtered == 1
        assert solver.stats.imported_clauses == 0


# --------------------------------------------------------------------- #
# Deterministic interleaved sharing race


class TestInterleavedRace:
    def test_unsat_race_shares_and_proves(self, tmp_path):
        proof = str(tmp_path / "race.drat")
        cnf = pigeonhole_cnf(4)
        race = interleaved_sharing_race(
            cnf, [kissat_like(), cadical_like()], slice_conflicts=64,
            proof=proof)
        assert race.status == "UNSAT"
        assert race.sharing["exported"] > 0
        assert race.sharing["imported"] > 0
        assert race.proof == proof
        outcome = check_drat_file(cnf, proof)
        assert outcome.valid, outcome.reason

    def test_race_is_deterministic(self):
        cnf = pigeonhole_cnf(3)
        configs = [kissat_like(), cadical_like()]
        first = interleaved_sharing_race(cnf, configs, slice_conflicts=32)
        second = interleaved_sharing_race(cnf, configs, slice_conflicts=32)
        assert first.winner == second.winner
        assert first.worker_conflicts == second.worker_conflicts
        assert first.sharing == second.sharing

    def test_round_budget_returns_unknown(self):
        race = interleaved_sharing_race(
            pigeonhole_cnf(4), [kissat_like()], slice_conflicts=1,
            max_rounds=2)
        assert race.status == "UNKNOWN"
        assert race.winner is None
        assert race.proof is None

    def test_rejects_empty_configs(self):
        with pytest.raises(SolverError):
            interleaved_sharing_race(pigeonhole_cnf(3), [])


# --------------------------------------------------------------------- #
# Portfolio integration: sharing on/off, chaos


class TestPortfolioSharing:
    def test_sharing_off_matches_plain_portfolio_result(self):
        """sharing=None must leave the pre-sharing behavior untouched."""
        cnf = pigeonhole_cnf(4)
        plain = solve_portfolio(cnf, num_workers=2, seed=7)
        assert plain.status == "UNSAT"
        assert plain.sharing is None
        assert plain.proof is None

    def test_hooks_off_solver_stats_identical(self):
        """A solver with no hooks equals one with inert sharing plumbing.

        The sharing-disabled portfolio path installs *nothing* on the
        solver; this pins the stronger property that even an installed
        import source returning no clauses leaves the search untouched.
        """
        cnf = pigeonhole_cnf(4)
        bare = CdclSolver(cnf, config=kissat_like())
        bare_result = bare.solve()

        wired = CdclSolver(cnf, config=kissat_like())
        wired.set_import_source(lambda: [])
        wired.set_export_hook(ClauseExportHook(lambda c, l: None))
        wired_result = wired.solve()

        assert bare_result.status == wired_result.status == "UNSAT"
        assert bare.stats.conflicts == wired.stats.conflicts
        assert bare.stats.decisions == wired.stats.decisions
        assert bare.stats.propagations == wired.stats.propagations

    def test_sharing_race_returns_counters(self):
        cnf = pigeonhole_cnf(4)
        result = solve_portfolio(cnf, num_workers=2, seed=7, sharing=True)
        assert result.status == "UNSAT"
        assert result.sharing is not None
        assert set(result.sharing) == {"exported", "imported", "filtered"}

    @needs_fork
    def test_worker_death_mid_export_race_still_concludes(self, monkeypatch,
                                                          tmp_path):
        """A SIGKILLed worker (PR 7 chaos hook) cannot corrupt the race:
        the verdict lands and the merged proof still checks — the victim's
        line-buffered lemma stream never ends mid-antecedent."""
        monkeypatch.setenv(CHAOS_ENV, "kill_worker=0@50")
        proof = str(tmp_path / "chaos.drat")
        cnf = harder_cnf()
        result = solve_portfolio(cnf, num_workers=2, seed=3,
                                 base_config=kissat_like(), sharing=True,
                                 proof=proof)
        assert result.status == "UNSAT"
        dead = [w for w in result.workers if w.status == "ERROR"]
        assert len(dead) == 1 and dead[0].index == 0
        assert result.proof == proof
        outcome = check_drat_file(cnf, proof)
        assert outcome.valid, outcome.reason

    @pytest.mark.chaos
    @needs_fork
    def test_sharing_survives_half_killed_portfolio(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "kill_worker=0|1@50")
        result = solve_portfolio(harder_cnf(), num_workers=4, seed=3,
                                 base_config=kissat_like(), sharing=True)
        assert result.status == "UNSAT"
        statuses = {w.index: w.status for w in result.workers}
        assert statuses[0] == "ERROR" and statuses[1] == "ERROR"
        assert result.sharing is not None
