"""Tests for the solver-backend abstraction (repro.sat.backends).

The subprocess backend is exercised against fake solver scripts that cover
every output convention: a correct SAT answer with ``v`` model lines, an
UNSAT answer, a solver that never terminates (timeout path), garbage output
and a SAT claim with a bogus model.
"""

import os
import stat
import sys
import textwrap

import pytest

from repro.cnf import Cnf
from repro.errors import BackendError, BackendUnavailableError
from repro.runner.batch import execute_task
from repro.runner.task import Task
from repro.sat.backends import (
    BACKEND_NAMES,
    InternalBackend,
    SolverBackend,
    SubprocessBackend,
    available_backends,
    get_backend,
    resolve_backend,
)
from repro.benchgen import adder_equivalence_miter


def _simple_sat_cnf() -> Cnf:
    cnf = Cnf(3)
    cnf.add_clause([1, 2])
    cnf.add_clause([-1, 3])
    cnf.add_clause([2, 3])
    return cnf


def _simple_unsat_cnf() -> Cnf:
    cnf = Cnf(1)
    cnf.add_clause([1])
    cnf.add_clause([-1])
    return cnf


def _fake_solver(tmp_path, name: str, body: str) -> str:
    """Write an executable fake solver script and return its path."""
    script = tmp_path / name
    script.write_text(f"#!{sys.executable}\n" + textwrap.dedent(body))
    script.chmod(script.stat().st_mode | stat.S_IXUSR)
    return str(script)


@pytest.fixture
def sat_solver(tmp_path):
    """A fake solver that answers SAT with the all-true model."""
    return _fake_solver(tmp_path, "fake_sat.py", """\
        import sys
        path = [a for a in sys.argv[1:] if not a.startswith("-")][0]
        num_vars = 0
        for line in open(path):
            if line.startswith("p cnf"):
                num_vars = int(line.split()[2])
                break
        print("c fake solver")
        print("c decisions: 42")
        print("c conflicts: 17")
        print("c propagations: 1234")
        print("s SATISFIABLE")
        print("v " + " ".join(str(v) for v in range(1, num_vars + 1)) + " 0")
        sys.exit(10)
        """)


@pytest.fixture
def unsat_solver(tmp_path):
    return _fake_solver(tmp_path, "fake_unsat.py", """\
        import sys
        print("s UNSATISFIABLE")
        sys.exit(20)
        """)


@pytest.fixture
def hanging_solver(tmp_path):
    return _fake_solver(tmp_path, "fake_hang.py", """\
        import time
        time.sleep(600)
        """)


@pytest.fixture
def garbage_solver(tmp_path):
    return _fake_solver(tmp_path, "fake_garbage.py", """\
        import sys
        print("segmentation fault (core dumped)")
        sys.exit(1)
        """)


@pytest.fixture
def lying_solver(tmp_path):
    """Claims SAT but emits a model violating the formula."""
    return _fake_solver(tmp_path, "fake_liar.py", """\
        import sys
        print("s SATISFIABLE")
        print("v -1 -2 -3 0")
        sys.exit(10)
        """)


class TestInternalBackend:
    def test_solves_sat_and_unsat(self):
        backend = InternalBackend()
        assert backend.available()
        assert backend.solve(_simple_sat_cnf()).status == "SAT"
        assert backend.solve(_simple_unsat_cnf()).status == "UNSAT"

    def test_registry_aliases(self):
        assert isinstance(get_backend("internal"), InternalBackend)
        assert isinstance(get_backend("cdcl"), InternalBackend)
        assert isinstance(get_backend("kissat"), SubprocessBackend)

    def test_resolve_backend(self):
        assert isinstance(resolve_backend(None), InternalBackend)
        assert isinstance(resolve_backend("internal"), InternalBackend)
        backend = InternalBackend()
        assert resolve_backend(backend) is backend
        assert isinstance(resolve_backend("cadical"), SubprocessBackend)

    def test_backends_satisfy_protocol(self):
        assert isinstance(InternalBackend(), SolverBackend)
        assert isinstance(SubprocessBackend("kissat"), SolverBackend)

    def test_available_backends_reports_internal(self):
        availability = available_backends()
        assert availability["internal"] is True
        assert set(availability) == {n for n in BACKEND_NAMES if n != "cdcl"}


class TestSubprocessBackend:
    def test_sat_with_model_and_stats(self, sat_solver):
        backend = SubprocessBackend("kissat", binary=sat_solver)
        assert backend.available()
        cnf = _simple_sat_cnf()
        result = backend.solve(cnf)
        assert result.status == "SAT"
        assert result.is_sat
        assert cnf.evaluate(result.model)
        assert result.stats.decisions == 42
        assert result.stats.conflicts == 17
        assert result.stats.propagations == 1234
        assert result.stats.solve_time > 0

    def test_unsat(self, unsat_solver):
        backend = SubprocessBackend("kissat", binary=unsat_solver)
        result = backend.solve(_simple_unsat_cnf())
        assert result.status == "UNSAT"
        assert result.model is None

    def test_timeout_reports_unknown(self, hanging_solver):
        backend = SubprocessBackend("custom", binary=hanging_solver)
        result = backend.solve(_simple_sat_cnf(), time_limit=0.1)
        assert result.status == "UNKNOWN"
        assert result.model is None

    def test_garbage_output_raises_backend_error(self, garbage_solver):
        backend = SubprocessBackend("kissat", binary=garbage_solver)
        with pytest.raises(BackendError, match="no verdict"):
            backend.solve(_simple_sat_cnf())

    def test_lying_model_raises_backend_error(self, lying_solver):
        backend = SubprocessBackend("kissat", binary=lying_solver)
        with pytest.raises(BackendError, match="does not satisfy"):
            backend.solve(_simple_sat_cnf())

    def test_missing_binary_unavailable_and_raises(self):
        backend = SubprocessBackend("kissat",
                                    binary="/nonexistent/kissat-binary")
        assert not backend.available()
        with pytest.raises(BackendUnavailableError, match="kissat"):
            backend.solve(_simple_sat_cnf())

    def test_missing_path_lookup_raises(self):
        backend = SubprocessBackend("definitely-not-a-solver-1234")
        assert not backend.available()
        with pytest.raises(BackendUnavailableError):
            backend.solve(_simple_sat_cnf())

    def test_env_var_binary_override(self, sat_solver, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER_KISSAT", sat_solver)
        backend = SubprocessBackend("kissat")
        assert backend.available()
        assert backend.solve(_simple_sat_cnf()).status == "SAT"

    def test_exit_code_verdict_without_s_line(self, tmp_path):
        # MiniSat-style: verdict only through the exit code.
        script = _fake_solver(tmp_path, "fake_minisat.py", """\
            import sys
            print("UNSATISFIABLE")
            sys.exit(20)
            """)
        backend = SubprocessBackend("minisat", binary=script)
        assert backend.solve(_simple_unsat_cnf()).status == "UNSAT"


class TestBackendThreading:
    """The backend selection flows through pipeline, task and runner."""

    def test_run_pipeline_accepts_backend(self, unsat_solver):
        from repro.core.pipeline import run_pipeline

        aig = adder_equivalence_miter(4, mutated=True, seed=2)
        internal = run_pipeline(aig, "Baseline", backend="internal")
        assert internal.status == "SAT"
        # The fake backend (wrongly, but verifiably) answers UNSAT — what
        # matters here is that its verdict flows through run_pipeline.
        external = run_pipeline(
            aig, "Baseline",
            backend=SubprocessBackend("kissat", binary=unsat_solver))
        assert external.status == "UNSAT"

    def test_task_fingerprint_includes_backend(self):
        aig = adder_equivalence_miter(4, seed=1)
        default = Task.from_aig(aig, "Baseline")
        explicit = Task.from_aig(aig, "Baseline", backend="internal")
        external = Task.from_aig(aig, "Baseline", backend="kissat")
        assert default.fingerprint() == explicit.fingerprint()
        assert default.fingerprint() != external.fingerprint()

    def test_execute_task_with_missing_backend_reports_error(self):
        aig = adder_equivalence_miter(4, seed=1)
        task = Task.from_aig(aig, "Baseline", instance_name="x",
                             backend="definitely-not-a-solver-1234")
        run = execute_task(task)
        assert run.status == "ERROR"

    def test_execute_task_with_fake_backend_binary(self, unsat_solver,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER_KISSAT", unsat_solver)
        aig = adder_equivalence_miter(4, seed=1)
        task = Task.from_aig(aig, "Baseline", instance_name="x",
                             backend="kissat")
        run = execute_task(task)
        assert run.status == "UNSAT"
