"""Proof composition through the parallel paths: portfolio and cubes.

Every UNSAT verdict of the process-parallel solvers must come with a DRAT
proof that the built-in backward checker validates — including merged
multi-worker proofs under clause sharing and the aggregated per-cube proofs
of an all-UNSAT cube-and-conquer run.  Non-UNSAT outcomes (and UNSAT under
assumptions, which has no formula-level refutation) must leave *no* proof
file behind, even a stale one from an earlier run.
"""

import pytest

from repro.benchgen.random_logic import pigeonhole_cnf
from repro.cnf.cnf import Cnf
from repro.sat.portfolio import solve_cube_and_conquer, solve_portfolio
from repro.sat.proof import check_drat_file


@pytest.fixture
def unsat_cnf():
    return pigeonhole_cnf(3)


@pytest.fixture
def sat_cnf():
    cnf = Cnf(3)
    cnf.add_clause([1, 2])
    cnf.add_clause([-1, 3])
    return cnf


def _assert_valid(cnf, path):
    outcome = check_drat_file(cnf, path)
    assert outcome.valid, outcome.reason
    return outcome


class TestPortfolioProof:
    def test_racing_unsat_produces_checkable_proof(self, unsat_cnf,
                                                   tmp_path):
        proof = str(tmp_path / "race.drat")
        result = solve_portfolio(unsat_cnf, num_workers=2, seed=1,
                                 proof=proof)
        assert result.status == "UNSAT"
        assert result.proof == proof
        _assert_valid(unsat_cnf, proof)

    def test_sharing_race_merged_proof_checks(self, unsat_cnf, tmp_path):
        proof = str(tmp_path / "shared.drat")
        result = solve_portfolio(unsat_cnf, num_workers=2, seed=1,
                                 sharing=True, proof=proof)
        assert result.status == "UNSAT"
        assert result.proof == proof
        _assert_valid(unsat_cnf, proof)

    def test_single_worker_inline_path(self, unsat_cnf, tmp_path):
        proof = str(tmp_path / "solo.drat")
        result = solve_portfolio(unsat_cnf, num_workers=1, proof=proof)
        assert result.status == "UNSAT"
        assert result.proof == proof
        _assert_valid(unsat_cnf, proof)

    def test_sat_leaves_no_file_and_removes_stale(self, sat_cnf, tmp_path):
        proof = tmp_path / "stale.drat"
        proof.write_text("0\n")  # stale junk from "an earlier run"
        result = solve_portfolio(sat_cnf, num_workers=2, seed=1,
                                 proof=str(proof))
        assert result.status == "SAT"
        assert result.proof is None
        assert not proof.exists()

    def test_assumption_unsat_skips_proof(self, tmp_path):
        cnf = Cnf(2)
        cnf.add_clause([1])
        cnf.add_clause([2])
        proof = tmp_path / "assume.drat"
        result = solve_portfolio(cnf, num_workers=2, seed=1,
                                 assumptions=[-1], proof=str(proof))
        assert result.status == "UNSAT"
        assert result.result.core  # assumption-level failure
        assert result.proof is None
        assert not proof.exists()

    def test_no_proof_requested_reports_none(self, unsat_cnf):
        result = solve_portfolio(unsat_cnf, num_workers=2, seed=1)
        assert result.proof is None
        assert "proof" in result.as_dict()


class TestCubeProof:
    def test_all_unsat_cubes_aggregate_to_checkable_proof(self, unsat_cnf,
                                                          tmp_path):
        proof = str(tmp_path / "cube.drat")
        result = solve_cube_and_conquer(unsat_cnf, cube_depth=2,
                                        num_workers=2, seed=1, proof=proof)
        assert result.status == "UNSAT"
        assert result.proof == proof
        _assert_valid(unsat_cnf, proof)

    def test_deeper_split_still_checks(self, tmp_path):
        cnf = pigeonhole_cnf(4)
        proof = str(tmp_path / "cube3.drat")
        result = solve_cube_and_conquer(cnf, cube_depth=3, num_workers=4,
                                        seed=2, proof=proof)
        assert result.status == "UNSAT"
        assert result.proof == proof
        _assert_valid(cnf, proof)

    def test_sat_cube_leaves_no_file(self, sat_cnf, tmp_path):
        proof = tmp_path / "cube-sat.drat"
        result = solve_cube_and_conquer(sat_cnf, cube_depth=1,
                                        num_workers=2, seed=1,
                                        proof=str(proof))
        assert result.status == "SAT"
        assert result.proof is None
        assert not proof.exists()

    def test_assumption_unsat_cube_skips_proof(self, tmp_path):
        cnf = pigeonhole_cnf(3)
        cnf.add_clause([1])
        proof = tmp_path / "cube-assume.drat"
        result = solve_cube_and_conquer(cnf, cube_depth=1, num_workers=2,
                                        seed=1, assumptions=[-1],
                                        proof=str(proof))
        assert result.status == "UNSAT"
        if result.result.core:
            assert result.proof is None
            assert not proof.exists()
