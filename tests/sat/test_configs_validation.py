"""SolverConfig.__post_init__ rejects out-of-range knobs.

One test per validated field: the boundary values construct, the
out-of-range ones raise ``ValueError`` with a message naming the field.
"""

import pytest

from repro.sat.configs import SolverConfig, cadical_like, kissat_like


def test_defaults_and_presets_validate():
    SolverConfig()
    kissat_like()
    cadical_like()


@pytest.mark.parametrize("value", [0.5, 1.0, 1e-9])
def test_var_decay_accepts_unit_interval(value):
    assert SolverConfig(var_decay=value).var_decay == value


@pytest.mark.parametrize("value", [0.0, -0.1, 1.0001])
def test_var_decay_rejects_out_of_range(value):
    with pytest.raises(ValueError, match="var_decay"):
        SolverConfig(var_decay=value)


@pytest.mark.parametrize("value", [0.5, 1.0])
def test_clause_decay_accepts_unit_interval(value):
    assert SolverConfig(clause_decay=value).clause_decay == value


@pytest.mark.parametrize("value", [0.0, -1.0, 1.5])
def test_clause_decay_rejects_out_of_range(value):
    with pytest.raises(ValueError, match="clause_decay"):
        SolverConfig(clause_decay=value)


def test_restart_strategy_rejects_unknown():
    with pytest.raises(ValueError, match="restart strategy"):
        SolverConfig(restart_strategy="fibonacci")


@pytest.mark.parametrize("value", [0, -5])
def test_restart_interval_rejects_non_positive(value):
    with pytest.raises(ValueError, match="restart_interval"):
        SolverConfig(restart_interval=value)


@pytest.mark.parametrize("value", [0, -2000])
def test_reduce_interval_rejects_non_positive(value):
    with pytest.raises(ValueError, match="reduce_interval"):
        SolverConfig(reduce_interval=value)


@pytest.mark.parametrize("value", [-0.01, 1.01])
def test_reduce_fraction_rejects_out_of_range(value):
    with pytest.raises(ValueError, match="reduce_fraction"):
        SolverConfig(reduce_fraction=value)


@pytest.mark.parametrize("value", [0.0, 1.0])
def test_reduce_fraction_accepts_boundaries(value):
    assert SolverConfig(reduce_fraction=value).reduce_fraction == value


def test_max_lbd_keep_rejects_negative():
    with pytest.raises(ValueError, match="max_lbd_keep"):
        SolverConfig(max_lbd_keep=-1)


def test_max_lbd_keep_accepts_zero():
    assert SolverConfig(max_lbd_keep=0).max_lbd_keep == 0


@pytest.mark.parametrize("value", [0.0, 0.05, 1.0])
def test_random_decision_freq_accepts_unit_interval(value):
    assert SolverConfig(random_decision_freq=value).random_decision_freq == value


@pytest.mark.parametrize("value", [-0.1, 1.1])
def test_random_decision_freq_rejects_out_of_range(value):
    with pytest.raises(ValueError, match="random_decision_freq"):
        SolverConfig(random_decision_freq=value)
