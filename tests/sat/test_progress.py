"""Tests for the solver's periodic progress hook and the new statistics."""

import dataclasses

import pytest

from repro.benchgen.random_logic import pigeonhole_cnf, random_cnf
from repro.errors import SolverError
from repro.sat.solver import CdclSolver, solve_cnf
from repro.sat.stats import ProgressSnapshot, SolverStats


@pytest.fixture
def hard_unsat():
    """PHP(6,5): deterministic, a few hundred conflicts — enough samples."""
    return pigeonhole_cnf(5)


class TestProgressHook:
    def test_fires_every_interval(self, hard_unsat):
        snapshots = []
        solver = CdclSolver(hard_unsat)
        solver.set_progress(snapshots.append, interval=50)
        result = solver.solve()
        assert result.is_unsat
        assert result.stats.conflicts >= 100  # sanity: workload is non-trivial
        assert len(snapshots) == result.stats.conflicts // 50
        # Samples land exactly on interval boundaries (one check/conflict).
        assert [s.conflicts for s in snapshots] == \
            [50 * (i + 1) for i in range(len(snapshots))]

    def test_snapshot_fields_consistent(self, hard_unsat):
        snapshots = []
        solver = CdclSolver(hard_unsat)
        solver.set_progress(snapshots.append, interval=50)
        solver.solve()
        for earlier, later in zip(snapshots, snapshots[1:]):
            assert later.conflicts > earlier.conflicts
            assert later.decisions >= earlier.decisions
            assert later.propagations >= earlier.propagations
            assert later.elapsed_s >= earlier.elapsed_s
        last = snapshots[-1]
        assert last.conflicts_per_sec > 0
        assert last.propagations_per_conflict > 0
        assert last.learned_db_size > 0
        assert last.trail_depth >= 0
        assert last.decision_level_ema > 0

    def test_no_hook_means_no_overhead_state(self, hard_unsat):
        solver = CdclSolver(hard_unsat)
        result = solver.solve()
        assert result.is_unsat  # off path unaffected

    def test_uninstall(self, hard_unsat):
        snapshots = []
        solver = CdclSolver(hard_unsat)
        solver.set_progress(snapshots.append, interval=50)
        solver.set_progress(None)
        solver.solve()
        assert snapshots == []

    def test_interval_validation(self, hard_unsat):
        solver = CdclSolver(hard_unsat)
        with pytest.raises(SolverError):
            solver.set_progress(lambda s: None, interval=0)

    def test_solve_cnf_forwards_hook(self, hard_unsat):
        snapshots = []
        result = solve_cnf(hard_unsat, progress=snapshots.append,
                           progress_interval=50)
        assert result.is_unsat
        assert snapshots

    def test_rate_resets_per_solve_call(self, hard_unsat):
        """Incremental reuse: conflicts/sec uses this call's work only."""
        solver = CdclSolver(hard_unsat)
        solver.solve(max_conflicts=120)
        snapshots = []
        solver.set_progress(snapshots.append, interval=10)
        solver.solve()
        # Cumulative counters carry over, but the first sample of the second
        # call reflects at most interval conflicts of *new* work beyond them.
        assert snapshots
        assert snapshots[0].conflicts > 120
        assert snapshots[0].conflicts <= 130


class TestNewStats:
    def test_peak_trail_and_db_size_populated(self, hard_unsat):
        stats = CdclSolver(hard_unsat).solve().stats
        assert stats.peak_trail > 0
        assert stats.learned_db_size > 0
        assert stats.learned_db_size <= stats.learned_clauses

    def test_sat_exit_samples_full_trail(self):
        cnf = random_cnf(30, 60, seed=1, min_width=3, max_width=3)
        result = CdclSolver(cnf).solve()
        assert result.is_sat
        # At a SAT exit every variable is assigned, so the peak is total.
        assert result.stats.peak_trail == cnf.num_vars

    def test_propagations_per_conflict(self):
        stats = SolverStats(propagations=100, conflicts=4)
        assert stats.propagations_per_conflict == 25.0
        assert SolverStats().propagations_per_conflict == 0.0

    def test_as_dict_tracks_every_field(self):
        stats = SolverStats()
        expected = {f.name for f in dataclasses.fields(SolverStats)}
        assert set(stats.as_dict()) == expected
        assert "learned_db_size" in expected and "peak_trail" in expected


class TestProgressSnapshot:
    def test_as_dict_round_trip(self):
        snapshot = ProgressSnapshot(conflicts=100, restarts=2)
        data = snapshot.as_dict()
        assert data["conflicts"] == 100
        assert ProgressSnapshot(**data) == snapshot

    def test_progress_line_format(self):
        line = ProgressSnapshot(conflicts=1024, conflicts_per_sec=512.0,
                                restarts=3, learned_db_size=200,
                                trail_depth=40,
                                decision_level_ema=7.25).progress_line()
        assert line.startswith("c ")
        assert "1024 conflicts" in line
        assert "512 conf/s" in line
        assert "3 restarts" in line
        assert "200 learned" in line
        assert "40 trail" in line
        assert "7.2 dl-ema" in line
