"""Incremental-interface tests: assumptions, cores, add_clause/new_var.

The differential class is the load-bearing one: ``solve(assumptions=...)``
must agree with solving the assumption-augmented CNF from scratch on 100
random instances, and every reported final-conflict core must itself be
unsatisfiable when re-asserted.
"""

import random

import pytest

from repro.benchgen.random_logic import pigeonhole_cnf, random_cnf
from repro.cnf import Cnf
from repro.errors import SolverError
from repro.sat.configs import SolverConfig, cadical_like, kissat_like
from repro.sat.solver import CdclSolver, solve_cnf


def _chain_cnf() -> Cnf:
    """x1 -> x2 -> x3 (free variables, implications only)."""
    cnf = Cnf(3)
    cnf.add_clause([-1, 2])
    cnf.add_clause([-2, 3])
    return cnf


class TestAssumptions:
    def test_sat_under_assumptions_propagates_them(self):
        solver = CdclSolver(_chain_cnf())
        result = solver.solve(assumptions=[1])
        assert result.is_sat
        assert result.model[1] and result.model[2] and result.model[3]
        assert result.core is None

    def test_unsat_under_assumptions_reports_core(self):
        solver = CdclSolver(_chain_cnf())
        result = solver.solve(assumptions=[1, -3])
        assert result.is_unsat
        assert set(result.core) == {1, -3}

    def test_core_excludes_irrelevant_assumptions(self):
        cnf = Cnf(4)
        cnf.add_clause([-1, 2])
        solver = CdclSolver(cnf)
        result = solver.solve(assumptions=[4, 1, -2])
        assert result.is_unsat
        assert 4 not in result.core
        assert set(result.core) <= {1, -2}

    def test_contradictory_assumptions(self):
        solver = CdclSolver(_chain_cnf())
        result = solver.solve(assumptions=[2, -2])
        assert result.is_unsat
        assert set(result.core) == {2, -2}

    def test_duplicate_assumptions_are_harmless(self):
        solver = CdclSolver(_chain_cnf())
        result = solver.solve(assumptions=[1, 1, 3, 3])
        assert result.is_sat

    def test_solver_reusable_after_assumption_unsat(self):
        solver = CdclSolver(_chain_cnf())
        assert solver.solve(assumptions=[1, -3]).is_unsat
        assert solver.solve(assumptions=[-1]).is_sat
        assert solver.solve().is_sat

    def test_formula_level_unsat_has_empty_core(self):
        cnf = Cnf(1)
        cnf.add_clause([1])
        cnf.add_clause([-1])
        result = CdclSolver(cnf).solve(assumptions=[1])
        assert result.is_unsat
        assert result.core == []

    def test_assumption_out_of_range_raises(self):
        solver = CdclSolver(_chain_cnf())
        with pytest.raises(SolverError):
            solver.solve(assumptions=[99])

    def test_solve_cnf_wrapper_accepts_assumptions(self):
        result = solve_cnf(_chain_cnf(), assumptions=[1, -3])
        assert result.is_unsat and set(result.core) == {1, -3}


class TestIncrementalGrowth:
    def test_new_var_returns_next_dimacs_index(self):
        solver = CdclSolver(_chain_cnf())
        assert solver.new_var() == 4
        assert solver.new_var() == 5
        solver.add_clause([4, 5])
        result = solver.solve(assumptions=[-4])
        assert result.is_sat and result.model[5]

    def test_add_clause_between_solves(self):
        solver = CdclSolver(_chain_cnf())
        assert solver.solve(assumptions=[-3]).is_sat
        assert solver.add_clause([1]) is True   # forces x1 -> x3
        result = solver.solve(assumptions=[-3])
        assert result.is_unsat and set(result.core) == {-3}

    def test_add_clause_inconsistency_is_permanent(self):
        solver = CdclSolver(_chain_cnf())
        assert solver.add_clause([1]) is True
        assert solver.add_clause([-3]) is False  # 1 -> 3 contradicts -3
        result = solver.solve()
        assert result.is_unsat and result.core == []
        assert solver.add_clause([2]) is False

    def test_add_tautology_is_noop(self):
        solver = CdclSolver(_chain_cnf())
        assert solver.add_clause([1, -1]) is True
        assert solver.solve(assumptions=[-1]).is_sat

    def test_add_clause_after_sat_model(self):
        solver = CdclSolver(_chain_cnf())
        first = solver.solve()
        assert first.is_sat
        # Block the returned model, ask again: a fresh model must appear.
        blocking = [(-var if value else var)
                    for var, value in first.model.items()]
        assert solver.add_clause(blocking) is True
        second = solver.solve()
        assert second.is_sat
        assert second.model != first.model

    def test_model_enumeration_terminates(self):
        cnf = Cnf(3)
        cnf.add_clause([1, 2, 3])
        solver = CdclSolver(cnf)
        models = []
        while True:
            result = solver.solve()
            if not result.is_sat:
                break
            models.append(tuple(sorted(result.model.items())))
            solver.add_clause([(-var if value else var)
                               for var, value in result.model.items()])
        assert len(set(models)) == 7  # all assignments but all-false

    def test_per_call_conflict_budget(self):
        # The budget must apply per call, not against cumulative stats:
        # a second call with the same budget must still do real work.
        cnf = pigeonhole_cnf(4)
        solver = CdclSolver(cnf)
        first = solver.solve(max_conflicts=10)
        assert first.status == "UNKNOWN"
        second = solver.solve(max_conflicts=10)
        assert second.status in ("UNKNOWN", "UNSAT")
        assert solver.stats.conflicts >= 15  # both calls consumed budget


class TestPersistence:
    def test_learned_clauses_and_stats_accumulate(self):
        cnf = random_cnf(60, 255, seed=5, min_width=3, max_width=3)
        solver = CdclSolver(cnf)
        first = solver.solve(assumptions=[1, 2, 3])
        conflicts_after_first = solver.stats.conflicts
        second = solver.solve(assumptions=[1, 2, 3])
        assert second.status == first.status
        # Cumulative counters never reset across calls.
        assert solver.stats.conflicts >= conflicts_after_first

    def test_repeat_query_is_cheaper(self):
        # Same query twice: learned clauses + phases make the re-run take
        # no more conflicts than the first run.
        cnf = random_cnf(80, 336, seed=11, min_width=3, max_width=3)
        solver = CdclSolver(cnf)
        solver.solve(assumptions=[5, -17, 23])
        first_conflicts = solver.stats.conflicts
        solver.solve(assumptions=[5, -17, 23])
        second_conflicts = solver.stats.conflicts - first_conflicts
        assert second_conflicts <= first_conflicts


class TestDifferentialAssumptions:
    def test_assumptions_agree_with_augmented_cnf_100_instances(self):
        rng = random.Random(0)
        for trial in range(100):
            num_vars = rng.randint(5, 30)
            num_clauses = int(num_vars * rng.uniform(2.0, 5.0))
            base = random_cnf(num_vars, num_clauses, seed=trial)
            assumptions = [rng.choice([1, -1]) * rng.randint(1, num_vars)
                           for _ in range(rng.randint(0, 6))]
            augmented = base.copy()
            for literal in assumptions:
                augmented.add_clause([literal])
            assumed = solve_cnf(base, assumptions=assumptions)
            rebuilt = solve_cnf(augmented)
            assert assumed.status == rebuilt.status, \
                (trial, assumptions, assumed.status, rebuilt.status)
            if assumed.is_sat:
                assert augmented.evaluate(assumed.model), trial
            elif assumed.core:
                assert set(assumed.core) <= {literal for literal
                                             in assumptions}, trial
                core_only = base.copy()
                for literal in assumed.core:
                    core_only.add_clause([literal])
                assert solve_cnf(core_only).is_unsat, (trial, assumed.core)


class TestConfigDefaults:
    """Phase saving and Luby restarts are the default solver behaviour."""

    def test_default_config_knobs(self):
        config = SolverConfig()
        assert config.phase_saving is True
        assert config.restart_strategy == "luby"
        assert kissat_like().phase_saving is True
        assert cadical_like().phase_saving is True

    def test_restart_counter_increments(self):
        config = SolverConfig(restart_interval=5)
        result = solve_cnf(pigeonhole_cnf(5), config=config)
        assert result.is_unsat
        assert result.stats.restarts > 0

    def test_no_restarts_when_disabled(self):
        config = SolverConfig(restart_strategy="none")
        result = solve_cnf(pigeonhole_cnf(4), config=config)
        assert result.is_unsat
        assert result.stats.restarts == 0


class TestRandomDecisions:
    def test_random_decisions_are_seeded_and_sound(self):
        cnf = random_cnf(40, 160, seed=3, min_width=3, max_width=3)
        config = SolverConfig(random_decision_freq=0.3, seed=7)
        first = solve_cnf(cnf, config=config)
        second = solve_cnf(cnf, config=config)
        reference = solve_cnf(cnf)
        assert first.status == second.status == reference.status
        assert first.stats.decisions == second.stats.decisions
        if first.is_sat:
            assert cnf.evaluate(first.model)
