"""Tests for DRAT proof emission, merging and the backward checker.

The checker is a *soundness-critical* test oracle (it re-validates UNSAT
verdicts in the fuzz layer), so beyond the happy path these tests attack it
with hand-mutated proofs — dropped core lemmas, reordered RUP steps, bogus
deletions, claims about satisfiable formulas — and a committed corpus of
known-good and known-bad proof files under ``tests/sat/proofs/``.
"""

import os
from pathlib import Path

import pytest

from repro.benchgen.random_logic import pigeonhole_cnf, random_cnf
from repro.cnf.cnf import Cnf
from repro.cnf.dimacs import parse_dimacs
from repro.sat.configs import kissat_like
from repro.sat.proof import (
    DratWriter,
    LemmaStream,
    ProofError,
    check_drat,
    check_drat_file,
    cube_prefix_clauses,
    merge_lemma_streams,
    parse_drat,
    read_drat_file,
    read_lemma_stream,
    write_drat_file,
)
from repro.sat.solver import solve_cnf

PROOFS_DIR = Path(__file__).parent / "proofs"


@pytest.fixture
def php3():
    return pigeonhole_cnf(3)


def _solver_proof(cnf, path) -> list:
    """Solve ``cnf`` to UNSAT with proof logging; return the parsed proof."""
    result = solve_cnf(cnf, config=kissat_like(), proof=str(path))
    assert result.status == "UNSAT"
    return read_drat_file(str(path))


# --------------------------------------------------------------------- #
# DRAT text format


class TestDratFormat:
    def test_parse_round_trip(self):
        ops = [("a", (1, -2, 3)), ("d", (4, 5)), ("a", ())]
        text = "1 -2 3 0\nd 4 5 0\n0\n"
        assert parse_drat(text) == ops

    def test_comments_and_blank_lines_skipped(self):
        assert parse_drat("c hello\n\n1 0\nc bye\n0\n") == \
            [("a", (1,)), ("a", ())]

    @pytest.mark.parametrize("text", [
        "1 2",            # missing 0 terminator
        "1 0 2 0",        # literal 0 inside the clause
        "one 0",          # not a number
    ])
    def test_malformed_lines_rejected(self, text):
        with pytest.raises(ProofError):
            parse_drat(text)

    def test_write_drat_file_ensure_empty(self, tmp_path):
        path = str(tmp_path / "p.drat")
        count = write_drat_file(path, [(1, 2), (-1,)], ensure_empty=True)
        assert count == 3
        assert read_drat_file(path)[-1] == ("a", ())

    def test_write_drat_file_keeps_existing_empty(self, tmp_path):
        path = str(tmp_path / "p.drat")
        count = write_drat_file(path, [(1,), ()], ensure_empty=True)
        assert count == 2


# --------------------------------------------------------------------- #
# Emission from the solver


class TestEmission:
    def test_unsat_solve_writes_checkable_proof(self, php3, tmp_path):
        path = tmp_path / "php3.drat"
        ops = _solver_proof(php3, path)
        assert ("a", ()) in ops
        outcome = check_drat_file(php3, str(path))
        assert outcome.valid, outcome.reason
        assert outcome.lemmas >= 1
        assert 1 <= outcome.checked <= outcome.lemmas

    def test_sat_solve_leaves_no_proof_file(self, tmp_path):
        cnf = Cnf(2)
        cnf.add_clause([1, 2])
        path = tmp_path / "sat.drat"
        result = solve_cnf(cnf, proof=str(path))
        assert result.status == "SAT"
        assert not path.exists()

    def test_budgeted_unknown_leaves_no_proof_file(self, php3, tmp_path):
        path = tmp_path / "partial.drat"
        result = solve_cnf(php3, config=kissat_like(), proof=str(path),
                           max_conflicts=1)
        assert result.status == "UNKNOWN"
        assert not path.exists()

    def test_assumption_unsat_leaves_no_proof_file(self, tmp_path):
        cnf = Cnf(2)
        cnf.add_clause([1])
        cnf.add_clause([2])
        path = tmp_path / "assume.drat"
        result = solve_cnf(cnf, proof=str(path), assumptions=[-1])
        assert result.status == "UNSAT"
        assert result.core  # assumption-level, not formula-level
        assert not path.exists()

    def test_drat_writer_counts_and_context_manager(self, tmp_path):
        path = str(tmp_path / "w.drat")
        with DratWriter(path) as writer:
            writer.add_clause((1, 2))
            writer.delete_clause((1, 2))
            writer.add_clause(())
        assert writer.num_added == 2
        assert writer.num_deleted == 1
        assert read_drat_file(path) == \
            [("a", (1, 2)), ("d", (1, 2)), ("a", ())]

    def test_drat_writer_unwritable_path_raises(self, tmp_path):
        with pytest.raises(ProofError):
            DratWriter(str(tmp_path / "missing-dir" / "p.drat"))


# --------------------------------------------------------------------- #
# Checker soundness: hand-mutated proofs must be rejected


class TestCheckerSoundness:
    def test_valid_proof_accepted_core_and_all(self, php3, tmp_path):
        ops = _solver_proof(php3, tmp_path / "p.drat")
        assert check_drat(php3, ops).valid
        assert check_drat(php3, ops, check_all=True).valid

    def test_dropped_core_lemma_rejected(self, php3, tmp_path):
        ops = _solver_proof(php3, tmp_path / "p.drat")
        additions = [i for i, (op, clause) in enumerate(ops)
                     if op == "a" and clause]
        broke = False
        for index in reversed(additions):
            mutated = ops[:index] + ops[index + 1:]
            try:
                outcome = check_drat(php3, mutated)
            except ProofError:
                continue
            if not outcome.valid:
                broke = True
                break
        assert broke, "no single dropped lemma was load-bearing"

    def test_reordered_rup_step_rejected(self, php3, tmp_path):
        ops = _solver_proof(php3, tmp_path / "p.drat")
        additions = [i for i, (op, clause) in enumerate(ops)
                     if op == "a" and clause]
        broke = False
        for index in reversed(additions):
            # Hoist a late lemma before the antecedents it was derived from.
            mutated = [ops[index]] + ops[:index] + ops[index + 1:]
            outcome = check_drat(php3, mutated)
            if not outcome.valid:
                broke = True
                break
        assert broke, "no reordering broke the proof"

    def test_bogus_deletion_rejected(self, php3, tmp_path):
        ops = _solver_proof(php3, tmp_path / "p.drat")
        mutated = [("d", (1, 2, 4))] + ops  # no such clause in PHP(4,3)
        outcome = check_drat(php3, mutated)
        assert not outcome.valid
        assert "deletion" in outcome.reason

    def test_missing_empty_clause_rejected(self, php3, tmp_path):
        ops = _solver_proof(php3, tmp_path / "p.drat")
        mutated = [(op, clause) for op, clause in ops if clause]
        outcome = check_drat(php3, mutated)
        assert not outcome.valid
        assert "empty clause" in outcome.reason

    def test_unsat_claim_about_sat_formula_rejected(self):
        cnf = Cnf(3)
        cnf.add_clause([1, 2, 3])
        assert not check_drat(cnf, [("a", ())]).valid

    def test_unjustified_lemma_rejected(self):
        # (1) is neither RUP nor RAT here: resolving with (-1 2) needs (−2),
        # which nothing propagates.
        cnf = Cnf(2)
        cnf.add_clause([-1, 2])
        cnf.add_clause([1, 2])
        outcome = check_drat(cnf, [("a", (1,)), ("a", (-2,)), ("a", ())])
        assert not outcome.valid

    def test_rat_lemma_accepted(self):
        # (1) is not RUP (assuming -1 propagates nothing) but is RAT on its
        # first literal: no clause contains -1, so the check is vacuous.
        # check_all forces the non-core lemma to actually be verified.
        cnf = Cnf(3)
        cnf.add_clause([2, 3])
        cnf.add_clause([2, -3])
        cnf.add_clause([-2, 3])
        cnf.add_clause([-2, -3])
        proof = [("a", (1,)), ("a", (3,)), ("a", ())]
        outcome = check_drat(cnf, proof, check_all=True)
        assert outcome.valid, outcome.reason
        assert outcome.checked == 3

    def test_deletion_reliance_rejected(self, php3, tmp_path):
        """Deleting the original clauses the refutation needs breaks it."""
        ops = _solver_proof(php3, tmp_path / "p.drat")
        clauses = [tuple(clause) for clause in php3.clauses]
        all_deleted = [("d", clause) for clause in clauses] + ops
        assert not check_drat(php3, all_deleted).valid


# --------------------------------------------------------------------- #
# Lemma streams and merging


class TestLemmaStreams:
    def test_lamport_stamping_and_observe(self):
        stream = LemmaStream(worker=1)
        stream.add_clause((1,))
        assert stream.lemmas == [(1, (1,))]
        stream.observe(10)
        stream.add_clause((2,))
        assert stream.lemmas[-1] == (11, (2,))
        stream.observe(5)  # never moves backwards
        assert stream.clock == 11

    def test_file_stream_round_trip(self, tmp_path):
        path = str(tmp_path / "w0.lemmas")
        with LemmaStream(path, worker=0) as stream:
            stream.add_clause((1, -2))
            stream.observe(7)
            stream.add_clause(())
        assert read_lemma_stream(path) == [(1, (1, -2)), (8, ())]

    def test_file_stream_flushes_line_by_line(self, tmp_path):
        """Kill-safety: each lemma is on disk before the next solver step."""
        path = str(tmp_path / "w0.lemmas")
        stream = LemmaStream(path, worker=0)
        stream.add_clause((3,))
        # Not closed — simulates a SIGKILLed worker.  The line must be
        # readable already (the stream is line-buffered).
        assert read_lemma_stream(path) == [(1, (3,))]
        stream.close()

    def test_merge_orders_by_timestamp_then_worker(self):
        first = [(1, (1,)), (4, (4,))]
        second = [(1, (10,)), (2, (2,))]
        merged = merge_lemma_streams([first, second])
        assert merged == [(1,), (10,), (2,), (4,)]

    def test_deletions_are_dropped_by_streams(self):
        stream = LemmaStream()
        stream.add_clause((1,))
        stream.delete_clause((1,))
        assert stream.lemmas == [(1, (1,))]

    def test_read_lemma_stream_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.lemmas"
        path.write_text("1 2 3\n")  # not 0-terminated
        with pytest.raises(ProofError):
            read_lemma_stream(str(path))


# --------------------------------------------------------------------- #
# Cube-and-conquer glue lemmas


class TestCubePrefixClauses:
    def test_depth_two_tree_shape(self):
        cubes = [(-1, -2), (-1, 2), (1, -2), (1, 2)]
        clauses = cube_prefix_clauses(cubes)
        # Two internal prefixes at depth 1, then the empty clause (root).
        assert clauses == [(-1,), (1,), ()]

    def test_depth_zero_and_one(self):
        assert cube_prefix_clauses([]) == [()]
        assert cube_prefix_clauses([(-1,), (1,)]) == [()]

    def test_incomplete_tree_rejected(self):
        with pytest.raises(ProofError):
            cube_prefix_clauses([(-1, -2), (1, 2)])

    def test_mixed_depth_rejected(self):
        with pytest.raises(ProofError):
            cube_prefix_clauses([(-1,), (1, 2)])

    def test_glue_closes_a_real_cube_run(self):
        """Negated cores + prefix clauses form a checkable refutation.

        Mirrors the cube-and-conquer worker: each cube is refuted under
        assumptions with a proof stream attached, the negated failed core
        is logged as the cube's closing lemma, and the prefix-tree glue
        clauses finish the merged proof.
        """
        from repro.sat.solver import CdclSolver

        cnf = pigeonhole_cnf(3)
        cubes = [(-1, -2), (-1, 2), (1, -2), (1, 2)]
        streams = []
        for index, cube in enumerate(cubes):
            stream = LemmaStream(worker=index)
            solver = CdclSolver(cnf, config=kissat_like())
            solver.set_proof(stream)
            result = solver.solve(assumptions=list(cube))
            assert result.status == "UNSAT"
            stream.add_clause(tuple(-lit for lit in result.core))
            streams.append(stream)
        merged = merge_lemma_streams([s.lemmas for s in streams])
        proof = [("a", clause) for clause in merged]
        proof += [("a", clause) for clause in cube_prefix_clauses(cubes)]
        outcome = check_drat(cnf, proof)
        assert outcome.valid, outcome.reason


# --------------------------------------------------------------------- #
# Committed corpus: every good proof verifies, every bad one is rejected


def _corpus_cases():
    cases = []
    for cnf_path in sorted(PROOFS_DIR.glob("*.cnf")):
        stem = cnf_path.stem
        for proof_path in sorted(PROOFS_DIR.glob(f"{stem}.*.drat")):
            kind = proof_path.name[len(stem) + 1:].split("-")[0] \
                .split(".")[0]
            cases.append(pytest.param(cnf_path, proof_path, kind == "good",
                                      id=proof_path.name))
    return cases


class TestProofCorpus:
    def test_corpus_is_present_and_two_sided(self):
        cases = _corpus_cases()
        assert any(case.values[2] for case in cases)
        assert any(not case.values[2] for case in cases)

    @pytest.mark.parametrize("cnf_path,proof_path,expect_valid",
                             _corpus_cases())
    def test_corpus_file(self, cnf_path, proof_path, expect_valid):
        cnf = parse_dimacs(cnf_path.read_text(), strict=False)
        outcome = check_drat_file(cnf, str(proof_path))
        assert outcome.valid == expect_valid, \
            f"{proof_path.name}: {outcome.reason or 'verified'}"


# --------------------------------------------------------------------- #
# Randomised sanity: solver proofs over a small seeded population


@pytest.mark.parametrize("seed", range(6))
def test_random_unsat_proofs_check(seed, tmp_path):
    cnf = random_cnf(12, 70, seed, min_width=2, max_width=3)
    path = tmp_path / "r.drat"
    result = solve_cnf(cnf, config=kissat_like(), proof=str(path))
    if result.status != "UNSAT":
        assert not path.exists()
        return
    outcome = check_drat_file(cnf, str(path))
    assert outcome.valid, f"seed {seed}: {outcome.reason}"
