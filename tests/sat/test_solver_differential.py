"""Differential and determinism guards for the rewritten CDCL hot paths.

The solver rewrite (blocker-literal watches, indexed VSIDS heap, epoch-based
conflict analysis, in-place database reduction) must not change *what* the
solver concludes, only how fast it gets there.  These tests pin that down:

* a seeded sweep of ~100 random small CNFs cross-checked against the DPLL
  reference oracle, with every SAT model validated against the formula;
* bitwise determinism of the search trajectory (two runs on the same CNF
  produce identical statistics);
* direct unit coverage of the indexed heap and the in-place reduction.
"""

import numpy as np
import pytest

from repro.benchgen import random_cnf as _random_cnf
from repro.sat import CdclSolver, SolverConfig, cadical_like, dpll_solve, kissat_like
from repro.sat.heap import VarOrderHeap


def _differential_cases():
    """~100 seeded (num_vars, num_clauses, seed) triples of varying density."""
    cases = []
    rng = np.random.default_rng(20260730)
    for index in range(100):
        num_vars = int(rng.integers(4, 14))
        num_clauses = int(rng.integers(num_vars, 6 * num_vars))
        cases.append((num_vars, num_clauses, index))
    return cases


class TestDifferentialAgainstDpll:
    @pytest.mark.parametrize("num_vars,num_clauses,seed", _differential_cases())
    def test_agreement_and_model_validity(self, num_vars, num_clauses, seed):
        cnf = _random_cnf(num_vars, num_clauses, seed)
        expected_status, _ = dpll_solve(cnf)
        result = CdclSolver(cnf).solve()
        assert result.status == expected_status
        if result.is_sat:
            assert cnf.evaluate(result.model)

    @pytest.mark.parametrize("config_factory", [kissat_like, cadical_like])
    def test_agreement_under_presets(self, config_factory):
        for seed in range(10):
            cnf = _random_cnf(10, 45, seed + 1000)
            expected_status, _ = dpll_solve(cnf)
            result = CdclSolver(cnf, config=config_factory()).solve()
            assert result.status == expected_status
            if result.is_sat:
                assert cnf.evaluate(result.model)


class TestDeterminism:
    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_identical_stats_across_runs(self, seed):
        cnf = _random_cnf(30, 125, seed)
        first = CdclSolver(cnf).solve()
        second = CdclSolver(cnf).solve()
        assert first.status == second.status
        assert first.model == second.model
        first_stats = first.stats.as_dict()
        second_stats = second.stats.as_dict()
        first_stats.pop("solve_time")
        second_stats.pop("solve_time")
        assert first_stats == second_stats

    def test_reduction_path_is_deterministic(self):
        # Force frequent reductions so the in-place deletion machinery runs.
        config = SolverConfig(reduce_interval=10, reduce_fraction=0.9,
                              max_lbd_keep=1, restart_interval=8)
        cnf = _random_cnf(40, 170, seed=3)
        first = CdclSolver(cnf, config=config).solve()
        second = CdclSolver(cnf, config=config).solve()
        assert first.status == second.status
        assert first.stats.conflicts == second.stats.conflicts
        assert first.stats.decisions == second.stats.decisions
        assert first.stats.deleted_clauses == second.stats.deleted_clauses


class TestInPlaceReduction:
    def test_deleted_clauses_are_detached_and_recycled(self):
        config = SolverConfig(reduce_interval=10, reduce_fraction=1.0,
                              max_lbd_keep=0, restart_interval=8)
        cnf = _random_cnf(35, 150, seed=11)
        solver = CdclSolver(cnf, config=config)
        result = solver.solve()
        assert result.status in ("SAT", "UNSAT")
        if result.stats.deleted_clauses:
            # Tombstoned slots exist or were recycled; watch lists must never
            # reference a deleted (None) clause.
            for watch_list in solver._watches:
                for position in range(0, len(watch_list), 2):
                    assert solver._clauses[watch_list[position]] is not None

    def test_correct_verdict_under_aggressive_reduction(self):
        config = SolverConfig(reduce_interval=5, reduce_fraction=1.0,
                              max_lbd_keep=0, restart_interval=4)
        for seed in range(6):
            cnf = _random_cnf(12, 55, seed + 500)
            expected_status, _ = dpll_solve(cnf)
            assert CdclSolver(cnf, config=config).solve().status == expected_status


class TestVarOrderHeap:
    def test_bulk_build_pops_in_activity_order(self):
        activity = [0.5, 3.0, 1.0, 3.0, 0.0]
        heap = VarOrderHeap(activity)
        heap.build(list(range(5)))
        assert [heap.pop() for _ in range(5)] == [1, 3, 2, 0, 4]
        assert len(heap) == 0

    def test_update_moves_bumped_variable_up(self):
        activity = [0.0] * 4
        heap = VarOrderHeap(activity)
        heap.build(list(range(4)))
        activity[3] = 10.0
        heap.update(3)
        assert heap.pop() == 3

    def test_insert_is_idempotent(self):
        activity = [1.0, 2.0]
        heap = VarOrderHeap(activity)
        heap.build([0, 1])
        heap.insert(0)
        heap.insert(0)
        assert len(heap) == 2
        assert heap.pop() == 1
        assert heap.pop() == 0

    def test_reinsert_after_pop(self):
        activity = [1.0, 2.0, 3.0]
        heap = VarOrderHeap(activity)
        heap.build([0, 1, 2])
        top = heap.pop()
        assert top == 2
        assert top not in heap
        heap.insert(top)
        assert heap.pop() == 2


class TestConfigRename:
    def test_reduce_fraction_validated(self):
        with pytest.raises(ValueError):
            SolverConfig(reduce_fraction=1.5)
        with pytest.raises(ValueError):
            SolverConfig(reduce_fraction=-0.1)
