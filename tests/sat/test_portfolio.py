"""Unit tests for the parallel portfolio / cube-and-conquer module."""

import pytest

from repro.benchgen.random_logic import pigeonhole_cnf, random_cnf
from repro.cnf.cnf import Cnf
from repro.errors import BackendError, SolverError
from repro.sat.backends import PortfolioBackend, get_backend, resolve_backend
from repro.sat.configs import SolverConfig, kissat_like
from repro.sat.portfolio import (
    cube_split_variables,
    diversified_configs,
    generate_cubes,
    solve_cube_and_conquer,
    solve_portfolio,
)
from repro.sat.solver import solve_cnf


# --------------------------------------------------------------------- #
# Diversification


def test_diversified_configs_deterministic_and_valid():
    first = diversified_configs(8, seed=3)
    second = diversified_configs(8, seed=3)
    assert first == second
    assert len(first) == 8
    assert len({config.name for config in first}) == 8
    assert len({config.seed for config in first}) == 8
    for config in first:
        # Construction re-runs __post_init__, so every jitter is in range.
        SolverConfig(**{field: getattr(config, field)
                        for field in SolverConfig.__dataclass_fields__})


def test_diversified_configs_different_seed_differs():
    assert diversified_configs(6, seed=0) != diversified_configs(6, seed=1)


def test_diversified_configs_base_anchors_worker_zero():
    base = kissat_like()
    configs = diversified_configs(4, base=base, seed=0)
    assert configs[0].var_decay == base.var_decay
    assert configs[0].restart_strategy == base.restart_strategy


def test_diversified_configs_rejects_zero_workers():
    with pytest.raises(SolverError):
        diversified_configs(0)


# --------------------------------------------------------------------- #
# Cube generation


def test_generate_cubes_covers_all_sign_combinations():
    cubes = generate_cubes([1, 2, 3])
    assert len(cubes) == 8
    assert len({tuple(cube) for cube in cubes}) == 8
    for cube in cubes:
        assert sorted(abs(literal) for literal in cube) == [1, 2, 3]


def test_generate_cubes_empty_split():
    assert generate_cubes([]) == [[]]


def test_cube_split_variables_prefers_frequent_vars():
    cnf = Cnf(4)
    for _ in range(5):
        cnf.add_clause([1, 2])
    cnf.add_clause([3, 4])
    assert cube_split_variables(cnf, 2) == [1, 2]


def test_cube_split_variables_skips_absent_vars():
    cnf = Cnf(10)
    cnf.add_clause([1, -2])
    assert set(cube_split_variables(cnf, 5)) == {1, 2}


def test_cube_split_variables_unknown_heuristic():
    with pytest.raises(SolverError):
        cube_split_variables(Cnf(2), 1, heuristic="lookahead")


# --------------------------------------------------------------------- #
# Portfolio racing


def test_portfolio_sat_matches_sequential_and_model_is_genuine():
    cnf = random_cnf(30, 100, seed=2, min_width=3, max_width=3)
    sequential = solve_cnf(cnf)
    report = solve_portfolio(cnf, num_workers=3, seed=5)
    assert report.status == sequential.status == "SAT"
    assert report.winner is not None
    assert cnf.evaluate(report.result.model)
    assert report.mode == "portfolio"
    assert len(report.workers) == 3


def test_portfolio_unsat():
    cnf = pigeonhole_cnf(4)
    report = solve_portfolio(cnf, num_workers=2)
    assert report.status == "UNSAT"
    assert report.result.core == []


def test_portfolio_single_worker_runs_inline():
    cnf = random_cnf(20, 60, seed=1)
    report = solve_portfolio(cnf, num_workers=1)
    assert report.status == solve_cnf(cnf).status
    assert len(report.workers) == 1
    assert report.workers[0].status in ("SAT", "UNSAT")


def test_portfolio_budget_exhaustion_reports_unknown():
    cnf = pigeonhole_cnf(6)
    report = solve_portfolio(cnf, num_workers=2, max_conflicts=3)
    assert report.status == "UNKNOWN"
    assert all(worker.status == "UNKNOWN" for worker in report.workers)
    # Aggregated stats cover all workers that reported.
    assert report.result.stats.conflicts > 0


def test_portfolio_with_assumptions_core():
    cnf = Cnf(3)
    cnf.add_clause([1, 2])
    report = solve_portfolio(cnf, num_workers=2, assumptions=[-1, -2])
    assert report.status == "UNSAT"
    assert set(report.result.core) <= {-1, -2}


def test_portfolio_explicit_configs_sets_worker_count():
    cnf = random_cnf(15, 40, seed=3)
    configs = [kissat_like(), SolverConfig(name="plain")]
    report = solve_portfolio(cnf, configs=configs)
    assert [worker.config_name for worker in report.workers] \
        == ["kissat_like", "plain"]


# --------------------------------------------------------------------- #
# Cube and conquer


def test_cube_and_conquer_sat_and_unsat_match_sequential():
    for seed in (0, 1, 2):
        cnf = random_cnf(25, 95, seed=seed, min_width=3, max_width=3)
        expected = solve_cnf(cnf).status
        report = solve_cube_and_conquer(cnf, cube_depth=2, num_workers=2)
        assert report.status == expected
        assert report.mode == "cube"
        assert report.num_cubes == 4
        if report.status == "SAT":
            assert cnf.evaluate(report.result.model)


def test_cube_and_conquer_unsat_aggregates_all_cubes():
    cnf = pigeonhole_cnf(4)
    report = solve_cube_and_conquer(cnf, cube_depth=3, num_workers=2)
    assert report.status == "UNSAT"
    solved = sum(worker.cubes_solved for worker in report.workers)
    # A decisive formula-level UNSAT may stop early; otherwise all cubes ran.
    assert 1 <= solved <= report.num_cubes


def test_cube_and_conquer_single_worker_inline():
    cnf = random_cnf(20, 70, seed=4, min_width=3, max_width=3)
    report = solve_cube_and_conquer(cnf, cube_depth=2, num_workers=1)
    assert report.status == solve_cnf(cnf).status


def test_cube_and_conquer_explicit_variables():
    cnf = random_cnf(20, 60, seed=5, min_width=3, max_width=3)
    report = solve_cube_and_conquer(cnf, cube_depth=3, num_workers=1,
                                    variables=[3, 7, 11])
    assert report.cube_variables == [3, 7, 11]
    assert report.status == solve_cnf(cnf).status


def test_cube_and_conquer_rejects_bad_arguments():
    cnf = random_cnf(10, 20, seed=0)
    with pytest.raises(SolverError):
        solve_cube_and_conquer(cnf, cube_depth=0)
    with pytest.raises(SolverError):
        solve_cube_and_conquer(cnf, cube_depth=99)
    with pytest.raises(SolverError):
        solve_cube_and_conquer(cnf, cube_depth=2, num_workers=0)
    with pytest.raises(SolverError):
        solve_cube_and_conquer(cnf, cube_depth=2, variables=[0])


def test_cube_and_conquer_budget_exhaustion_unknown():
    cnf = pigeonhole_cnf(7)
    report = solve_cube_and_conquer(cnf, cube_depth=2, num_workers=2,
                                    max_conflicts=1)
    assert report.status == "UNKNOWN"


# --------------------------------------------------------------------- #
# Backend integration


def test_portfolio_backend_registered_and_available():
    backend = get_backend("portfolio")
    assert isinstance(backend, PortfolioBackend)
    assert backend.available()


def test_portfolio_backend_solve_and_detailed():
    cnf = random_cnf(20, 60, seed=6, min_width=3, max_width=3)
    backend = PortfolioBackend(num_workers=2)
    result = backend.solve(cnf, config=kissat_like())
    assert result.status == solve_cnf(cnf).status
    detailed = backend.solve_detailed(cnf)
    assert detailed.mode == "portfolio"


def test_portfolio_backend_cube_mode():
    cnf = random_cnf(18, 55, seed=7, min_width=3, max_width=3)
    backend = PortfolioBackend(num_workers=2, cube_depth=2)
    detailed = backend.solve_detailed(cnf)
    assert detailed.mode == "cube"
    assert detailed.status == solve_cnf(cnf).status


def test_portfolio_backend_rejects_bad_options():
    with pytest.raises(BackendError):
        PortfolioBackend(num_workers=0)
    with pytest.raises(BackendError):
        PortfolioBackend(cube_depth=-1)
    with pytest.raises(BackendError):
        get_backend("internal", num_workers=2)
    with pytest.raises(BackendError):
        resolve_backend(PortfolioBackend(), num_workers=2)


def test_resolve_backend_builds_portfolio_with_kwargs():
    backend = resolve_backend("portfolio", num_workers=3, cube_depth=2)
    assert isinstance(backend, PortfolioBackend)
    assert backend.num_workers == 3
    assert backend.cube_depth == 2


def test_all_workers_crashing_raises_instead_of_unknown(monkeypatch):
    import repro.sat.portfolio as portfolio_module

    def crashing_worker(index, cnf, config, time_limit, max_conflicts,
                        max_decisions, assumptions, queue, trace_path=None,
                        lemma_path=None, endpoint=None):
        queue.put({"kind": "error", "index": index,
                   "error": "RuntimeError('boom')", "elapsed": 0.0})

    monkeypatch.setattr(portfolio_module, "_race_worker", crashing_worker)
    cnf = random_cnf(10, 30, seed=0)
    with pytest.raises(SolverError, match="every portfolio worker failed"):
        solve_portfolio(cnf, num_workers=1)


def test_get_backend_portfolio_rejects_binary():
    with pytest.raises(BackendError, match="solver-binary"):
        get_backend("portfolio", binary="/opt/kissat")


def test_cube_mode_respects_max_decisions_budget():
    cnf = pigeonhole_cnf(7)
    report = solve_cube_and_conquer(cnf, cube_depth=2, num_workers=2,
                                    max_decisions=1)
    assert report.status == "UNKNOWN"
