"""Tests for the numpy MLP and the replay buffer."""

import numpy as np
import pytest

from repro.errors import RlError
from repro.rl import Mlp, ReplayBuffer, Transition


class TestMlp:
    def test_forward_shape(self):
        mlp = Mlp(input_dim=4, hidden_dims=(8,), output_dim=3)
        single = mlp.forward(np.zeros(4))
        batch = mlp.forward(np.zeros((5, 4)))
        assert single.shape == (1, 3)
        assert batch.shape == (5, 3)

    def test_rejects_bad_dims(self):
        with pytest.raises(RlError):
            Mlp(input_dim=0, hidden_dims=(4,), output_dim=2)
        mlp = Mlp(input_dim=4, hidden_dims=(8,), output_dim=3)
        with pytest.raises(RlError):
            mlp.forward(np.zeros((2, 5)))

    def test_learns_simple_regression(self):
        # Q(s)[a] should learn to predict a linear function of the state.
        rng = np.random.default_rng(0)
        mlp = Mlp(input_dim=3, hidden_dims=(32, 32), output_dim=2,
                  learning_rate=5e-3, seed=1)
        losses = []
        for _ in range(400):
            states = rng.standard_normal((16, 3))
            actions = rng.integers(0, 2, size=16)
            targets = states[:, 0] * 2.0 + np.where(actions == 1, 1.0, -1.0)
            losses.append(mlp.train_on_targets(states, actions, targets))
        assert np.mean(losses[-20:]) < np.mean(losses[:20]) * 0.2

    def test_parameter_roundtrip(self):
        mlp = Mlp(input_dim=4, hidden_dims=(8,), output_dim=2, seed=3)
        other = Mlp(input_dim=4, hidden_dims=(8,), output_dim=2, seed=99)
        state = np.ones(4)
        assert not np.allclose(mlp.forward(state), other.forward(state))
        other.set_parameters(mlp.get_parameters())
        np.testing.assert_allclose(mlp.forward(state), other.forward(state))

    def test_set_parameters_rejects_mismatch(self):
        mlp = Mlp(input_dim=4, hidden_dims=(8,), output_dim=2)
        other = Mlp(input_dim=4, hidden_dims=(16,), output_dim=2)
        with pytest.raises(RlError):
            mlp.set_parameters(other.get_parameters())
        with pytest.raises(RlError):
            mlp.set_parameters(other.get_parameters()[:-1])


class TestReplayBuffer:
    def _transition(self, value):
        return Transition(state=np.array([value]), action=0, reward=float(value),
                          next_state=np.array([value + 1]), done=False)

    def test_push_and_sample(self):
        buffer = ReplayBuffer(capacity=10)
        for index in range(5):
            buffer.push(self._transition(index))
        assert len(buffer) == 5
        sample = buffer.sample(3)
        assert len(sample) == 3
        assert all(isinstance(item, Transition) for item in sample)

    def test_eviction_at_capacity(self):
        buffer = ReplayBuffer(capacity=4)
        for index in range(10):
            buffer.push(self._transition(index))
        assert len(buffer) == 4
        rewards = {item.reward for item in buffer.sample(64)}
        assert rewards <= {6.0, 7.0, 8.0, 9.0}

    def test_empty_sample_rejected(self):
        with pytest.raises(RlError):
            ReplayBuffer(capacity=4).sample(1)

    def test_bad_capacity_rejected(self):
        with pytest.raises(RlError):
            ReplayBuffer(capacity=0)
