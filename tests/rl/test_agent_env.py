"""Tests for the DQN agent, the synthesis environment and the training loop."""

import numpy as np
import pytest

from repro.benchgen import generate_training_suite, lec_instance
from repro.benchgen.datapath import ripple_carry_adder
from repro.errors import RlError
from repro.features import DeepGateEmbedder
from repro.rl import (
    DqnAgent,
    RandomAgent,
    SynthesisEnv,
    Transition,
    agent_recipe,
    train_dqn,
)
from repro.synthesis.recipe import ACTION_NAMES
from tests.helpers import functionally_equivalent, random_aig


def _small_env(max_steps=3):
    return SynthesisEnv(
        max_steps=max_steps,
        embedder=DeepGateEmbedder(dim=16),
        max_conflicts=2_000,
    )


class TestDqnAgent:
    def test_act_returns_valid_action(self):
        agent = DqnAgent(state_dim=22, num_actions=5, seed=0)
        state = np.zeros(22)
        for epsilon in (0.0, 0.5, 1.0):
            action = agent.act(state, epsilon=epsilon)
            assert 0 <= action < 5

    def test_rejects_bad_gamma(self):
        with pytest.raises(RlError):
            DqnAgent(state_dim=8, gamma=1.5)

    def test_train_step_requires_enough_samples(self):
        agent = DqnAgent(state_dim=4, num_actions=3, batch_size=8, seed=1)
        assert agent.train_step() is None
        for index in range(8):
            agent.observe(Transition(state=np.zeros(4), action=index % 3,
                                     reward=1.0, next_state=np.zeros(4),
                                     done=index % 2 == 0))
        loss = agent.train_step()
        assert loss is not None and loss >= 0.0

    def test_target_network_sync(self):
        agent = DqnAgent(state_dim=4, num_actions=3, batch_size=4,
                         target_sync_interval=1, seed=2)
        state = np.ones(4)
        for _ in range(4):
            agent.observe(Transition(state=state, action=0, reward=1.0,
                                     next_state=state, done=True))
        agent.train_step()
        np.testing.assert_allclose(agent.q_network.forward(state),
                                   agent.target_network.forward(state))

    def test_save_load_roundtrip(self, tmp_path):
        agent = DqnAgent(state_dim=6, num_actions=4, seed=3)
        path = tmp_path / "agent.npz"
        state = np.linspace(0, 1, 6)
        expected = agent.q_values(state)
        agent.save(path)
        other = DqnAgent(state_dim=6, num_actions=4, seed=77)
        other.load(path)
        np.testing.assert_allclose(other.q_values(state), expected)

    def test_random_agent_never_ends_by_default(self):
        agent = RandomAgent(seed=5)
        end_index = ACTION_NAMES.index("end")
        actions = {agent.act(np.zeros(4)) for _ in range(200)}
        assert end_index not in actions
        assert actions <= set(range(len(ACTION_NAMES)))


class TestSynthesisEnv:
    def test_reset_and_state_shape(self):
        env = _small_env()
        aig = random_aig(num_pis=6, num_nodes=30, seed=1)
        state = env.reset(aig)
        assert state.shape == (env.state_dim,)
        assert env.state_dim == 6 + 16

    def test_step_before_reset_rejected(self):
        env = _small_env()
        with pytest.raises(RlError):
            env.step(0)

    def test_invalid_action_rejected(self):
        env = _small_env()
        env.reset(random_aig(seed=2))
        with pytest.raises(RlError):
            env.step(99)

    def test_episode_terminates_at_max_steps(self):
        env = _small_env(max_steps=2)
        env.reset(lec_instance(ripple_carry_adder(3), equivalent=False, seed=1))
        rewrite_index = ACTION_NAMES.index("rewrite")
        _, reward, done, _ = env.step(rewrite_index)
        assert not done and reward == 0.0
        _, reward, done, info = env.step(ACTION_NAMES.index("balance"))
        assert done
        assert "episode" in info
        episode = info["episode"]
        assert episode.recipe == ["rewrite", "balance"]
        assert episode.decisions_before >= 0
        assert episode.reward == pytest.approx(
            episode.decisions_before - episode.decisions_after)

    def test_end_action_terminates_immediately(self):
        env = _small_env()
        env.reset(lec_instance(ripple_carry_adder(3), equivalent=False, seed=2))
        _, _, done, info = env.step(ACTION_NAMES.index("end"))
        assert done
        assert info["episode"].recipe == []

    def test_intermediate_rewards_are_zero(self):
        env = _small_env(max_steps=3)
        env.reset(lec_instance(ripple_carry_adder(3), equivalent=False, seed=3))
        _, reward, done, _ = env.step(ACTION_NAMES.index("balance"))
        assert reward == 0.0 and not done

    def test_operations_preserve_function_through_env(self):
        env = _small_env(max_steps=3)
        instance = lec_instance(ripple_carry_adder(3), equivalent=False, seed=4)
        env.reset(instance)
        env.step(ACTION_NAMES.index("rewrite"))
        env.step(ACTION_NAMES.index("refactor"))
        assert functionally_equivalent(instance, env.current_aig)


class TestTraining:
    def test_training_smoke(self):
        suite = generate_training_suite(num_instances=3, seed=1)
        env = _small_env(max_steps=2)
        agent, history = train_dqn(suite, env, episodes=3, seed=0)
        assert history.num_episodes == 3
        assert len(history.episode_results) == 3
        assert isinstance(history.mean_reward(), float)

    def test_training_rejects_empty_instances(self):
        env = _small_env()
        with pytest.raises(RlError):
            train_dqn([], env, episodes=1)

    def test_agent_recipe_rollout(self):
        env = _small_env(max_steps=4)
        agent = RandomAgent(seed=3)
        aig = lec_instance(ripple_carry_adder(3), equivalent=False, seed=5)
        recipe = agent_recipe(agent, env, aig)
        assert 0 < len(recipe) <= 4
        assert all(name in ACTION_NAMES and name != "end" for name in recipe)

    def test_trained_agent_recipe_is_deterministic(self):
        env = _small_env(max_steps=3)
        agent = DqnAgent(state_dim=env.state_dim, num_actions=env.num_actions, seed=4)
        aig = lec_instance(ripple_carry_adder(3), equivalent=False, seed=6)
        first = agent_recipe(agent, env, aig)
        second = agent_recipe(agent, env, aig)
        assert first == second
