"""Tests for the experiment harnesses (Table I, Fig. 4, Fig. 5)."""

import pytest

from repro.benchgen import generate_training_suite
from repro.eval import (
    cactus_points,
    dataset_statistics,
    format_cactus,
    format_table,
    run_ablation,
    run_comparison,
)
from repro.rl import RandomAgent
from repro.sat import kissat_like


@pytest.fixture(scope="module")
def tiny_suite():
    return generate_training_suite(num_instances=4, seed=11)


class TestReport:
    def test_format_table(self):
        text = format_table(["A", "B"], [["x", 1.5], ["yy", 2]], title="T")
        assert "T" in text
        assert "1.50" in text
        assert "yy" in text

    def test_format_cactus(self):
        text = format_cactus({"Ours": [(1.0, 1), (3.0, 2)], "Baseline": []})
        assert "Ours" in text
        assert "2 instances" in text.replace("   ", " ").replace("  ", " ")


class TestTable1:
    def test_dataset_statistics_without_solving(self, tiny_suite):
        stats = dataset_statistics(tiny_suite, solve=False)
        assert stats.num_instances == 4
        assert set(stats.metrics) == {"# Gates", "# PIs", "Depth", "# Clauses"}
        for summary in stats.metrics.values():
            assert summary["min"] <= summary["avg"] <= summary["max"]
        assert "Table I" in stats.to_text()

    def test_dataset_statistics_with_solving(self, tiny_suite):
        stats = dataset_statistics(tiny_suite[:2], config=kissat_like(),
                                   time_limit=20.0)
        assert "Time (s)" in stats.metrics
        assert stats.metrics["Time (s)"]["max"] >= 0.0


class TestFig4Harness:
    def test_run_comparison_structure(self, tiny_suite):
        comparison = run_comparison(tiny_suite[:2], config=kissat_like(),
                                    solver_name="kissat_like", time_limit=30.0)
        assert set(comparison.runs) == {"Baseline", "Comp.", "Ours"}
        for runs in comparison.runs.values():
            assert len(runs) == 2
        summary = comparison.summary_text()
        assert "Fig. 4" in summary
        assert comparison.total_runtime("Baseline") > 0.0
        assert comparison.solved("Ours") >= 1

    def test_reduction_percentage(self, tiny_suite):
        comparison = run_comparison(tiny_suite[:2], config=kissat_like(),
                                    time_limit=30.0)
        # On tiny instances preprocessing can dominate, so the reduction may
        # be strongly negative; the harness must still report a finite value
        # bounded above by 100 %.
        reduction = comparison.reduction_vs("Ours", "Baseline")
        assert reduction <= 100.0
        assert reduction == reduction  # not NaN
        assert comparison.reduction_vs("Baseline", "Baseline") == pytest.approx(0.0)

    def test_cactus_points_monotone(self, tiny_suite):
        comparison = run_comparison(tiny_suite[:2], time_limit=30.0)
        points = cactus_points(comparison.runs["Ours"])
        times = [time for time, _ in points]
        counts = [count for _, count in points]
        assert times == sorted(times)
        assert counts == sorted(counts)


class TestFig5Harness:
    def test_run_ablation_structure(self, tiny_suite):
        ablation = run_ablation(tiny_suite[:2], config=kissat_like(),
                                solver_name="kissat_like", time_limit=30.0,
                                max_steps=3)
        assert set(ablation.runs) == {"Ours", "w/o RL", "C. Mapper"}
        summary = ablation.summary_text()
        assert "Fig. 5" in summary
        for setting in ablation.runs:
            assert ablation.total_runtime(setting) > 0.0
            assert ablation.total_decisions(setting) >= 0

    def test_ablation_with_random_agent_as_ours(self, tiny_suite):
        ablation = run_ablation(tiny_suite[:1], agent=RandomAgent(seed=2),
                                time_limit=30.0, max_steps=2)
        assert set(ablation.runs) == {"Ours", "w/o RL", "C. Mapper"}
