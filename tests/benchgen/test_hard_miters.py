"""Tests for the structurally-different-implementation LEC miters."""

from repro.aig.simulate import po_truth_tables
from repro.benchgen import adder_equivalence_miter, multiplier_commutativity_miter
from repro.cnf import tseitin_encode
from repro.sat import solve_cnf


class TestAdderEquivalenceMiter:
    def test_equivalent_is_constant_false(self):
        miter = adder_equivalence_miter(4)
        assert po_truth_tables(miter)[0] == 0

    def test_equivalent_is_unsat(self):
        miter = adder_equivalence_miter(6)
        assert solve_cnf(tseitin_encode(miter)).is_unsat

    def test_mutated_is_sat(self):
        miter = adder_equivalence_miter(6, mutated=True, seed=3)
        assert solve_cnf(tseitin_encode(miter)).is_sat

    def test_does_not_collapse_structurally(self):
        # The two adder implementations must not merge via strashing: the
        # miter keeps a substantial amount of logic.
        miter = adder_equivalence_miter(8)
        assert miter.num_ands > 100


class TestMultiplierCommutativityMiter:
    def test_small_width_is_constant_false(self):
        miter = multiplier_commutativity_miter(2)
        assert po_truth_tables(miter)[0] == 0

    def test_commutativity_is_unsat(self):
        miter = multiplier_commutativity_miter(3)
        assert solve_cnf(tseitin_encode(miter)).is_unsat

    def test_mutated_is_sat(self):
        miter = multiplier_commutativity_miter(3, mutated=True, seed=5)
        assert solve_cnf(tseitin_encode(miter)).is_sat

    def test_interface(self):
        width = 4
        miter = multiplier_commutativity_miter(width)
        assert miter.num_pis == 2 * width
        assert miter.num_pos == 1


class TestCornerCaseMiter:
    def test_exactly_one_satisfying_input_pattern(self):
        from repro.benchgen import corner_case_miter

        for seed in (0, 1, 2):
            miter = corner_case_miter(3, seed=seed)
            tables = po_truth_tables(miter)
            # PO 0 is the commutativity difference (constant false at this
            # width); PO 1 is the needle, true for exactly one pattern.
            assert tables[0] == 0
            assert bin(tables[1]).count("1") == 1

    def test_needle_varies_with_seed(self):
        from repro.benchgen import corner_case_miter

        tables = {po_truth_tables(corner_case_miter(3, seed=s))[1]
                  for s in range(6)}
        assert len(tables) > 1

    def test_is_sat_and_model_hits_the_needle(self):
        from repro.benchgen import corner_case_miter

        miter = corner_case_miter(3, seed=4)
        cnf = tseitin_encode(miter)
        result = solve_cnf(cnf)
        assert result.is_sat
        assert cnf.evaluate(result.model)
