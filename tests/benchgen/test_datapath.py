"""Tests for the datapath circuit generators."""

import pytest

from repro.aig.simulate import evaluate
from repro.benchgen.datapath import (
    array_multiplier,
    carry_select_adder,
    comparator,
    mux_tree,
    parity_tree,
    random_alu,
    ripple_carry_adder,
)
from repro.errors import BenchmarkError


def _bits_to_int(bits):
    return sum(1 << i for i, bit in enumerate(bits) if bit)


def _int_to_bits(value, width):
    return [bool((value >> i) & 1) for i in range(width)]


class TestAdders:
    @pytest.mark.parametrize("width", [1, 3, 4])
    def test_ripple_adder_exhaustive(self, width):
        aig = ripple_carry_adder(width)
        for a in range(1 << width):
            for b in range(1 << width):
                outputs = evaluate(aig, _int_to_bits(a, width) + _int_to_bits(b, width))
                assert _bits_to_int(outputs) == a + b

    @pytest.mark.parametrize("width,block", [(4, 2), (5, 3)])
    def test_carry_select_adder_matches_ripple(self, width, block):
        ripple = ripple_carry_adder(width)
        select = carry_select_adder(width, block=block)
        assert select.num_pis == ripple.num_pis
        assert select.num_pos == ripple.num_pos
        for a in range(1 << width):
            for b in range(1 << width):
                bits = _int_to_bits(a, width) + _int_to_bits(b, width)
                assert evaluate(select, bits) == evaluate(ripple, bits)

    def test_rejects_bad_width(self):
        with pytest.raises(BenchmarkError):
            ripple_carry_adder(0)
        with pytest.raises(BenchmarkError):
            carry_select_adder(4, block=0)


class TestMultiplier:
    @pytest.mark.parametrize("width", [2, 3])
    def test_exhaustive(self, width):
        aig = array_multiplier(width)
        assert aig.num_pos == 2 * width
        for a in range(1 << width):
            for b in range(1 << width):
                outputs = evaluate(aig, _int_to_bits(a, width) + _int_to_bits(b, width))
                assert _bits_to_int(outputs) == a * b


class TestComparator:
    @pytest.mark.parametrize("operation,reference", [
        ("lt", lambda a, b: a < b),
        ("eq", lambda a, b: a == b),
        ("le", lambda a, b: a <= b),
    ])
    def test_exhaustive(self, operation, reference):
        width = 3
        aig = comparator(width, operation=operation)
        for a in range(1 << width):
            for b in range(1 << width):
                bits = _int_to_bits(a, width) + _int_to_bits(b, width)
                assert evaluate(aig, bits) == [reference(a, b)]

    def test_rejects_unknown_operation(self):
        with pytest.raises(BenchmarkError):
            comparator(4, operation="gt")


class TestOtherCircuits:
    def test_mux_tree(self):
        select_bits = 2
        aig = mux_tree(select_bits)
        num_data = 1 << select_bits
        for select in range(num_data):
            for data in range(1 << num_data):
                bits = _int_to_bits(select, select_bits) + _int_to_bits(data, num_data)
                expected = bool((data >> select) & 1)
                assert evaluate(aig, bits) == [expected]

    def test_parity_tree(self):
        width = 6
        aig = parity_tree(width)
        for value in range(1 << width):
            bits = _int_to_bits(value, width)
            assert evaluate(aig, bits) == [bool(sum(bits) % 2)]

    def test_alu_operations(self):
        width = 3
        aig = random_alu(width)
        for op_code, reference in enumerate([
            lambda a, b: (a + b) & ((1 << width) - 1),
            lambda a, b: a & b,
            lambda a, b: a | b,
            lambda a, b: a ^ b,
        ]):
            op_bits = [bool(op_code & 1), bool(op_code & 2)]
            for a in range(1 << width):
                for b in range(1 << width):
                    bits = op_bits + _int_to_bits(a, width) + _int_to_bits(b, width)
                    outputs = evaluate(aig, bits)
                    assert _bits_to_int(outputs) == reference(a, b)
