"""Tests for LEC / ATPG instance construction and suite generation."""

import pytest

from repro.aig.simulate import po_truth_tables
from repro.benchgen import (
    CsatInstance,
    atpg_instance,
    build_miter,
    generate_test_suite,
    generate_training_suite,
    inject_stuck_at,
    lec_instance,
    mutate_aig,
)
from repro.benchgen.datapath import parity_tree, ripple_carry_adder
from repro.cnf import tseitin_encode
from repro.errors import BenchmarkError
from repro.sat import solve_cnf
from tests.helpers import random_aig


class TestMiter:
    def test_self_miter_is_constant_false(self):
        aig = ripple_carry_adder(3)
        miter = build_miter(aig, aig)
        assert miter.num_pos == 1
        tables = po_truth_tables(miter)
        assert tables[0] == 0

    def test_interface_mismatch_rejected(self):
        with pytest.raises(BenchmarkError):
            build_miter(ripple_carry_adder(3), ripple_carry_adder(4))

    def test_mutated_miter_is_not_constant_false(self):
        aig = ripple_carry_adder(3)
        miter = build_miter(aig, mutate_aig(aig, seed=3))
        tables = po_truth_tables(miter)
        assert tables[0] != 0


class TestMutation:
    def test_mutation_preserves_interface(self):
        aig = random_aig(num_pis=6, num_nodes=30, seed=1)
        mutated = mutate_aig(aig, seed=5)
        assert mutated.num_pis == aig.num_pis
        assert mutated.num_pos == aig.num_pos

    def test_mutation_rejects_empty(self):
        from repro.aig import AIG
        empty = AIG()
        empty.add_pi()
        with pytest.raises(BenchmarkError):
            mutate_aig(empty)


class TestLecInstances:
    def test_equivalent_instance_is_unsat(self):
        circuit = ripple_carry_adder(3)
        instance = lec_instance(circuit, equivalent=True)
        result = solve_cnf(tseitin_encode(instance))
        assert result.is_unsat

    def test_non_equivalent_instance_is_sat(self):
        circuit = ripple_carry_adder(3)
        instance = lec_instance(circuit, equivalent=False, seed=2)
        result = solve_cnf(tseitin_encode(instance))
        assert result.is_sat

    def test_parity_equivalence_is_unsat(self):
        circuit = parity_tree(8)
        instance = lec_instance(circuit, equivalent=True)
        result = solve_cnf(tseitin_encode(instance))
        assert result.is_unsat


class TestAtpgInstances:
    def test_stuck_at_fault_changes_function(self):
        circuit = ripple_carry_adder(3)
        node = list(circuit.and_vars())[2]
        faulty = inject_stuck_at(circuit, node, 1)
        assert po_truth_tables(faulty) != po_truth_tables(circuit)

    def test_stuck_at_rejects_bad_arguments(self):
        circuit = ripple_carry_adder(2)
        with pytest.raises(BenchmarkError):
            inject_stuck_at(circuit, 0, 1)
        with pytest.raises(BenchmarkError):
            inject_stuck_at(circuit, 1, 2)

    def test_atpg_instance_solves(self):
        circuit = ripple_carry_adder(3)
        instance = atpg_instance(circuit, seed=4)
        result = solve_cnf(tseitin_encode(instance))
        # The fault is either testable (SAT) or redundant (UNSAT); both are
        # legal outcomes, but the solver must terminate conclusively.
        assert result.status in ("SAT", "UNSAT")

    def test_pi_stuck_at_fault(self):
        circuit = ripple_carry_adder(2)
        faulty = inject_stuck_at(circuit, circuit.pis[0], 0)
        assert faulty.num_pis == circuit.num_pis
        assert po_truth_tables(faulty) != po_truth_tables(circuit)


class TestSuites:
    def test_training_suite_composition(self):
        suite = generate_training_suite(num_instances=10, seed=3)
        assert len(suite) == 10
        assert all(isinstance(instance, CsatInstance) for instance in suite)
        kinds = {instance.kind for instance in suite}
        assert kinds <= {"lec", "atpg"}
        assert all(instance.difficulty == "easy" for instance in suite)

    def test_test_suite_is_larger_scale(self):
        easy = generate_training_suite(num_instances=6, seed=0)
        hard = generate_test_suite(num_instances=6, seed=0)
        average_easy = sum(i.aig.num_ands for i in easy) / len(easy)
        average_hard = sum(i.aig.num_ands for i in hard) / len(hard)
        assert average_hard > average_easy

    def test_suites_are_deterministic(self):
        first = generate_training_suite(num_instances=5, seed=7)
        second = generate_training_suite(num_instances=5, seed=7)
        assert [i.name for i in first] == [i.name for i in second]
        assert [i.aig.num_ands for i in first] == [i.aig.num_ands for i in second]

    def test_expected_labels_are_consistent(self):
        suite = generate_training_suite(num_instances=12, seed=9)
        for instance in suite:
            if instance.expected == "unsat":
                # Only LEC equivalence families are labelled UNSAT up front.
                assert instance.kind == "lec"
                assert instance.metadata.get("family") in (
                    "adder_equivalence", "mult_commutativity", "self_equivalence")
