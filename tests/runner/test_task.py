"""Tests for the runner task model: hashing, serialisation, seeding."""

import pytest

from repro.rl import RandomAgent
from repro.runner import Task, TaskError, default_hard_timeout, resolve_pipeline_kwargs
from repro.sat import kissat_like

from tests.helpers import ripple_adder_aig


@pytest.fixture()
def adder():
    return ripple_adder_aig(3)


class TestFingerprint:
    def test_stable_and_content_addressed(self, adder):
        first = Task.from_aig(adder, "Baseline", config=kissat_like(),
                              time_limit=10.0)
        second = Task.from_aig(ripple_adder_aig(3), "Baseline",
                               config=kissat_like(), time_limit=10.0)
        assert first.fingerprint() == first.fingerprint()
        assert first.fingerprint() == second.fingerprint()

    def test_differs_with_inputs(self, adder):
        base = Task.from_aig(adder, "Baseline", time_limit=10.0)
        variants = [
            Task.from_aig(ripple_adder_aig(4), "Baseline", time_limit=10.0),
            Task.from_aig(adder, "Ours", time_limit=10.0),
            Task.from_aig(adder, "Baseline", time_limit=20.0),
            Task.from_aig(adder, "Baseline", time_limit=10.0,
                          config=kissat_like()),
            Task.from_aig(adder, "Ours", time_limit=10.0,
                          pipeline_kwargs={"lut_size": 6}),
        ]
        fingerprints = {task.fingerprint() for task in variants}
        assert base.fingerprint() not in fingerprints
        assert len(fingerprints) == len(variants)

    def test_config_seed_does_not_split_cache_key(self, adder):
        """The runner derives the solver seed from content, so a configured
        seed cannot change the outcome and must map to the same cell."""
        from dataclasses import replace

        base = kissat_like()
        first = Task.from_aig(adder, "Baseline", config=base, time_limit=10.0)
        second = Task.from_aig(adder, "Baseline", config=replace(base, seed=42),
                               time_limit=10.0)
        assert first.fingerprint() == second.fingerprint()

    def test_group_is_pure_relabelling(self, adder):
        plain = Task.from_aig(adder, "Ours", time_limit=10.0)
        labelled = Task.from_aig(adder, "Ours", time_limit=10.0,
                                 group="w/o RL")
        assert plain.fingerprint() == labelled.fingerprint()
        assert labelled.group_name == "w/o RL"
        assert plain.group_name == "Ours"

    def test_non_serialisable_kwargs_rejected(self, adder):
        task = Task.from_aig(adder, "Ours",
                             pipeline_kwargs={"agent": RandomAgent(seed=0)})
        with pytest.raises(TaskError):
            task.fingerprint()


class TestSeed:
    def test_deterministic_and_in_range(self, adder):
        task = Task.from_aig(adder, "Baseline", time_limit=10.0)
        assert task.seed() == task.seed()
        assert 0 <= task.seed() < 2 ** 32

    def test_varies_with_content(self, adder):
        first = Task.from_aig(adder, "Baseline")
        second = Task.from_aig(adder, "Ours")
        assert first.seed() != second.seed()


class TestRoundTrip:
    def test_aig_round_trip(self, adder):
        task = Task.from_aig(adder, "Baseline")
        restored = task.aig()
        assert restored.num_pis == adder.num_pis
        assert restored.num_pos == adder.num_pos
        assert task.instance_name == adder.name


class TestHelpers:
    def test_default_hard_timeout(self):
        assert default_hard_timeout(None) is None
        assert default_hard_timeout(60.0) == pytest.approx(150.0)

    def test_resolve_agent_to_recipe(self, adder):
        resolved = resolve_pipeline_kwargs(
            adder, {"agent": RandomAgent(seed=4), "max_steps": 3})
        assert "agent" not in resolved
        assert isinstance(resolved["recipe"], list)
        assert 0 < len(resolved["recipe"]) <= 3

    def test_resolve_none_agent_dropped(self, adder):
        resolved = resolve_pipeline_kwargs(adder, {"agent": None, "lut_size": 6})
        assert resolved == {"lut_size": 6}

    def test_resolve_passthrough_copies(self, adder):
        kwargs = {"lut_size": 6}
        resolved = resolve_pipeline_kwargs(adder, kwargs)
        assert resolved == kwargs
        assert resolved is not kwargs


class TestBackendKwargsFingerprint:
    def test_empty_backend_kwargs_keeps_legacy_fingerprint(self, adder):
        plain = Task.from_aig(adder, "Baseline", time_limit=10.0)
        explicit = Task.from_aig(adder, "Baseline", time_limit=10.0,
                                 backend_kwargs={})
        assert plain.fingerprint() == explicit.fingerprint()

    def test_backend_kwargs_split_the_cache_key(self, adder):
        base = Task.from_aig(adder, "Baseline", time_limit=10.0,
                             backend="portfolio")
        workers = Task.from_aig(adder, "Baseline", time_limit=10.0,
                                backend="portfolio",
                                backend_kwargs={"num_workers": 4})
        cube = Task.from_aig(adder, "Baseline", time_limit=10.0,
                             backend="portfolio",
                             backend_kwargs={"num_workers": 4,
                                             "cube_depth": 3})
        prints = {base.fingerprint(), workers.fingerprint(),
                  cube.fingerprint()}
        assert len(prints) == 3

    def test_portfolio_task_executes(self, adder):
        from repro.runner.batch import execute_task

        task = Task.from_aig(adder, "Baseline", backend="portfolio",
                             backend_kwargs={"num_workers": 2})
        run = execute_task(task)
        assert run.status in ("SAT", "UNSAT")
