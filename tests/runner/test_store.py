"""Tests for the JSONL result store: round trips, persistence, resume."""

import json

import pytest

from repro.core.results import InstanceRun
from repro.runner import ResultStore, canonical_record, record_to_run, run_to_record
from repro.sat.stats import SolverStats


def make_run(instance="adder3", pipeline="Baseline", status="SAT") -> InstanceRun:
    return InstanceRun(
        instance_name=instance,
        pipeline_name=pipeline,
        status=status,
        transform_time=0.125,
        solve_time=0.5,
        stats=SolverStats(decisions=42, conflicts=7, propagations=1234,
                          restarts=1, learned_clauses=5, deleted_clauses=2,
                          max_decision_level=9, solve_time=0.5),
        num_vars=17,
        num_clauses=51,
    )


class TestRecordRoundTrip:
    def test_lossless(self):
        run = make_run()
        record = run_to_record(run, "f" * 64, seed=123)
        assert record_to_run(json.loads(json.dumps(record))) == run

    def test_canonical_record_excludes_timing(self):
        record = canonical_record(make_run())
        text = json.dumps(record)
        assert "transform_time" not in text
        assert "solve_time" not in text
        assert record["stats"]["decisions"] == 42


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        run = make_run()
        assert store.get("a" * 64) is None
        store.put("a" * 64, run, seed=1)
        assert "a" * 64 in store
        assert store.get("a" * 64) == run
        assert len(store) == 1

    def test_persistence_across_instances(self, tmp_path):
        path = tmp_path / "store.jsonl"
        ResultStore(path).put("a" * 64, make_run(), seed=1)
        reloaded = ResultStore(path)
        assert len(reloaded) == 1
        assert reloaded.get("a" * 64) == make_run()
        assert reloaded.runs() == [make_run()]

    def test_missing_file_is_empty(self, tmp_path):
        store = ResultStore(tmp_path / "absent.jsonl")
        assert len(store) == 0
        assert store.skipped_lines == 0

    def test_torn_tail_line_is_skipped(self, tmp_path):
        """An interrupt mid-write must not poison the store on resume."""
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.put("a" * 64, make_run(), seed=1)
        store.put("b" * 64, make_run(instance="adder4"), seed=2)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "task": "cccc", "trunc')
        reloaded = ResultStore(path)
        assert len(reloaded) == 2
        assert reloaded.skipped_lines == 1
        assert reloaded.get("b" * 64) == make_run(instance="adder4")

    def test_wrong_schema_is_skipped(self, tmp_path):
        path = tmp_path / "store.jsonl"
        record = run_to_record(make_run(), "a" * 64)
        record["schema"] = 999
        path.write_text(json.dumps(record) + "\n")
        reloaded = ResultStore(path)
        assert len(reloaded) == 0
        assert reloaded.skipped_lines == 1

    def test_latest_record_wins(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        store.put("a" * 64, make_run(status="UNKNOWN"))
        store.put("a" * 64, make_run(status="SAT"))
        assert store.get("a" * 64).status == "SAT"
        assert len(store) == 1
