"""Tests for the batch runner: caching, hard timeouts, determinism, resume."""

import json
import multiprocessing
import signal
import time

import pytest

from repro.core.pipeline import PIPELINES, baseline_pipeline
from repro.runner import BatchRunner, ResultStore, Task, canonical_record
from repro.sat import kissat_like

from tests.helpers import random_aig, ripple_adder_aig


def _hanging_pipeline(aig):
    """A pathological pipeline that never finishes on its own."""
    for _ in range(1000):
        time.sleep(1.0)
    return baseline_pipeline(aig)


@pytest.fixture(autouse=True)
def _hang_pipeline_registered():
    """Expose the hang pipeline by name for the duration of each test.

    Pool workers fork inside the test body, after this fixture runs, so
    they inherit the registration; the registry is restored afterwards to
    keep the global ``PIPELINES`` dict pristine for other test modules.
    """
    PIPELINES["__hang__"] = _hanging_pipeline
    try:
        yield
    finally:
        PIPELINES.pop("__hang__", None)


_HAS_ALARM = hasattr(signal, "SIGALRM")
_FORK = multiprocessing.get_start_method(allow_none=False) == "fork"


def small_tasks(pipelines=("Baseline",), config=None, time_limit=10.0,
                count=3):
    tasks = []
    for index in range(count):
        aig = random_aig(num_pis=4, num_nodes=12, seed=index)
        for pipeline in pipelines:
            tasks.append(Task.from_aig(aig, pipeline, config=config,
                                       time_limit=time_limit))
    return tasks


class TestCaching:
    def test_miss_then_hit_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        tasks = small_tasks()
        first = BatchRunner(jobs=1, store=store).run(tasks)
        assert first.cache_hits == 0
        assert first.executed == len(tasks)

        second = BatchRunner(jobs=1, store=ResultStore(tmp_path / "store.jsonl")).run(tasks)
        assert second.cache_hits == len(tasks)
        assert second.executed == 0
        assert second.cache_fraction == 1.0
        # Cached runs reproduce the originals exactly, timing included.
        assert second.runs == first.runs
        assert "100% cached" in second.cache_summary()

    def test_runs_without_store(self):
        report = BatchRunner(jobs=1).run(small_tasks(count=1))
        assert report.cache_hits == 0
        assert report.runs[0].solved

    def test_in_batch_deduplication(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        aig = ripple_adder_aig(3)
        tasks = [
            Task.from_aig(aig, "Ours", time_limit=10.0),
            Task.from_aig(aig, "Ours", time_limit=10.0, group="w/o RL"),
        ]
        report = BatchRunner(jobs=1, store=store).run(tasks)
        assert report.executed == 1
        assert [run.pipeline_name for run in report.runs] == ["Ours", "w/o RL"]
        assert report.runs[0].decisions == report.runs[1].decisions

    def test_interrupt_preserves_completed_results(self, tmp_path):
        """Results are persisted as they complete, not at end of batch."""
        def _interrupt_pipeline(aig):
            raise KeyboardInterrupt

        PIPELINES["__interrupt__"] = _interrupt_pipeline
        try:
            path = tmp_path / "store.jsonl"
            tasks = small_tasks(count=2)
            tasks.append(Task.from_aig(ripple_adder_aig(3), "__interrupt__",
                                       time_limit=10.0))
            with pytest.raises(KeyboardInterrupt):
                BatchRunner(jobs=1, store=ResultStore(path)).run(tasks)
            # Both completed tasks survived the interrupt.
            assert len(ResultStore(path)) == 2
        finally:
            PIPELINES.pop("__interrupt__", None)

    def test_resume_skips_completed_tasks(self, tmp_path):
        """An interrupted sweep picks up where it stopped."""
        path = tmp_path / "store.jsonl"
        tasks = small_tasks(count=4)
        BatchRunner(jobs=1, store=ResultStore(path)).run(tasks[:2])

        resumed = BatchRunner(jobs=1, store=ResultStore(path)).run(tasks)
        assert resumed.cache_hits == 2
        assert resumed.executed == 2
        assert all(run.solved for run in resumed.runs)
        assert len(ResultStore(path)) == 4


@pytest.mark.skipif(not _HAS_ALARM, reason="requires SIGALRM")
class TestHardTimeout:
    def test_serial_timeout_reported_not_raised(self):
        tasks = [Task.from_aig(ripple_adder_aig(3), "__hang__",
                               time_limit=5.0, hard_timeout=0.5)]
        report = BatchRunner(jobs=1).run(tasks)
        assert report.runs[0].status == "TIMEOUT"
        assert report.runs[0].solve_time >= 0.5

    @pytest.mark.skipif(not _FORK, reason="hang pipeline needs fork workers")
    def test_parallel_timeout_does_not_kill_batch(self):
        aigs = [random_aig(num_pis=4, num_nodes=12, seed=seed)
                for seed in (10, 11)]
        tasks = [Task.from_aig(aigs[0], "Baseline", time_limit=10.0),
                 Task.from_aig(ripple_adder_aig(3), "__hang__",
                               time_limit=5.0, hard_timeout=0.5),
                 Task.from_aig(aigs[1], "Baseline", time_limit=10.0)]
        report = BatchRunner(jobs=2).run(tasks)
        statuses = [run.status for run in report.runs]
        assert statuses[1] == "TIMEOUT"
        assert statuses[0] in ("SAT", "UNSAT")
        assert statuses[2] in ("SAT", "UNSAT")

    def test_timeout_charged_in_aggregates(self):
        from repro.core.results import RunSet

        tasks = [Task.from_aig(ripple_adder_aig(3), "__hang__",
                               time_limit=5.0, hard_timeout=0.5)]
        report = BatchRunner(jobs=1).run(tasks)
        runset = RunSet(time_limit=5.0)
        runset.add(report.runs[0])
        assert runset.solved("__hang__") == 0
        assert runset.timeouts("__hang__") == 1
        assert runset.total_runtime("__hang__") == pytest.approx(5.0)


class TestErrorIsolation:
    def test_bad_task_reported_as_error(self):
        """One broken cell must not abort the rest of the sweep."""
        good = Task.from_aig(ripple_adder_aig(3), "Baseline", time_limit=10.0)
        bad = Task.from_aig(ripple_adder_aig(3), "Baseline", time_limit=10.0,
                            pipeline_kwargs={"no_such_kwarg": 1})
        report = BatchRunner(jobs=1).run([bad, good])
        assert report.runs[0].status == "ERROR"
        assert report.runs[1].solved

    def test_error_runs_are_not_cached(self, tmp_path):
        """Transient failures must be retried on resume, not served from disk."""
        path = tmp_path / "store.jsonl"
        good = Task.from_aig(ripple_adder_aig(3), "Baseline", time_limit=10.0)
        bad = Task.from_aig(ripple_adder_aig(3), "Baseline", time_limit=10.0,
                            pipeline_kwargs={"no_such_kwarg": 1})
        BatchRunner(jobs=1, store=ResultStore(path)).run([bad, good])
        assert len(ResultStore(path)) == 1  # only the good run persisted

        retry = BatchRunner(jobs=1, store=ResultStore(path)).run([bad, good])
        assert retry.cache_hits == 1
        assert retry.executed == 1

    def test_timeout_runs_are_cached(self, tmp_path):
        """Hard timeouts are deterministic and expensive: cache them."""
        if not _HAS_ALARM:
            pytest.skip("requires SIGALRM")
        path = tmp_path / "store.jsonl"
        task = Task.from_aig(ripple_adder_aig(3), "__hang__",
                             time_limit=5.0, hard_timeout=0.5)
        BatchRunner(jobs=1, store=ResultStore(path)).run([task])
        second = BatchRunner(jobs=1, store=ResultStore(path)).run([task])
        assert second.cache_hits == 1
        assert second.runs[0].status == "TIMEOUT"


class TestProofTasks:
    """Proof-bearing tasks: fingerprint-invisible, cache-bypassing."""

    def _miter_task(self, proof=None):
        from repro.benchgen.lec import multiplier_commutativity_miter

        return Task.from_aig(multiplier_commutativity_miter(2), "Baseline",
                             time_limit=10.0, proof=proof)

    def test_proof_excluded_from_fingerprint(self):
        assert self._miter_task().fingerprint() == \
            self._miter_task(proof="x.drat").fingerprint()

    def test_proof_tasks_bypass_cache_both_ways(self, tmp_path):
        """A cached record has no proof file to offer: the run executes,
        writes a checkable proof, and is itself never persisted."""
        from repro.cnf.tseitin import tseitin_encode
        from repro.sat.proof import check_drat_file

        path = tmp_path / "store.jsonl"
        plain = self._miter_task()
        BatchRunner(jobs=1, store=ResultStore(path)).run([plain])
        assert len(ResultStore(path)) == 1

        proof_file = tmp_path / "out.drat"
        proved = self._miter_task(proof=str(proof_file))
        report = BatchRunner(jobs=1, store=ResultStore(path)).run([proved])
        assert report.cache_hits == 0 and report.executed == 1
        assert report.runs[0].status == "UNSAT"
        outcome = check_drat_file(tseitin_encode(proved.aig()),
                                  str(proof_file))
        assert outcome.valid, outcome.reason
        assert len(ResultStore(path)) == 1  # the proof run is not cached
        # The plain task still hits the original record.
        replay = BatchRunner(jobs=1, store=ResultStore(path)).run([plain])
        assert replay.cache_hits == 1


class TestDeterminism:
    def test_parallel_results_identical_to_serial(self, tmp_path):
        """Same tasks, 1 worker vs many: every non-timing byte agrees."""
        tasks = small_tasks(pipelines=("Baseline", "Ours"),
                            config=kissat_like(), count=2)
        serial = BatchRunner(jobs=1,
                             store=ResultStore(tmp_path / "serial.jsonl")).run(tasks)
        parallel = BatchRunner(jobs=3,
                               store=ResultStore(tmp_path / "parallel.jsonl")).run(tasks)

        serial_bytes = [json.dumps(canonical_record(run), sort_keys=True)
                        for run in serial.runs]
        parallel_bytes = [json.dumps(canonical_record(run), sort_keys=True)
                          for run in parallel.runs]
        assert serial_bytes == parallel_bytes

    def test_rerun_is_deterministic(self):
        tasks = small_tasks(config=kissat_like(), count=2)
        first = BatchRunner(jobs=1).run(tasks)
        second = BatchRunner(jobs=1).run(tasks)
        assert ([canonical_record(run) for run in first.runs]
                == [canonical_record(run) for run in second.runs])


class TestValidation:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            BatchRunner(jobs=0)
