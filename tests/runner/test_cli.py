"""Tests for the ``python -m repro.runner`` command-line interface."""

import json

import pytest

from repro.runner.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.suite == "test"
        assert args.pipelines == ["Baseline", "Comp.", "Ours"]
        assert args.jobs == 1

    def test_rejects_unknown_pipeline(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--pipelines", "Nope"])

    def test_rejects_unknown_suite(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--suite", "nope"])


class TestMain:
    def run_cli(self, tmp_path, capsys, extra=()):
        store = tmp_path / "sweep.jsonl"
        code = main([
            "--suite", "training", "--size", "2", "--pipelines", "Baseline",
            "--time-limit", "15", "--store", str(store), *extra,
        ])
        assert code == 0
        return store, capsys.readouterr().out

    def test_sweep_writes_store_and_reports(self, tmp_path, capsys):
        store, out = self.run_cli(tmp_path, capsys)
        assert store.exists()
        records = [json.loads(line) for line in store.read_text().splitlines()]
        assert len(records) == 2
        assert {record["pipeline"] for record in records} == {"Baseline"}
        assert "runtime comparison" in out
        assert "0 cache hits" in out

    def test_second_invocation_is_fully_cached(self, tmp_path, capsys):
        self.run_cli(tmp_path, capsys)
        store, out = self.run_cli(tmp_path, capsys)
        assert "2 cache hits, 0 executed (100% cached)" in out
        # Aggregates come straight from the store, so they reproduce exactly.
        records = [json.loads(line) for line in store.read_text().splitlines()]
        assert len(records) == 2


class TestPortfolioFlags:
    def test_fold_portfolio_flags_defaults(self):
        from repro.sat.backends import fold_portfolio_flags

        assert fold_portfolio_flags("internal", None, None) \
            == ("internal", {})
        assert fold_portfolio_flags("kissat", None, None) == ("kissat", {})

    def test_fold_portfolio_flags_switches_backend(self):
        from repro.sat.backends import fold_portfolio_flags

        assert fold_portfolio_flags("internal", 4, None) \
            == ("portfolio", {"num_workers": 4})
        assert fold_portfolio_flags("internal", 2, 3) \
            == ("portfolio", {"num_workers": 2, "cube_depth": 3})
        assert fold_portfolio_flags("portfolio", None, 2) \
            == ("portfolio", {"cube_depth": 2})

    def test_fold_portfolio_flags_rejects_bad_combinations(self):
        from repro.errors import BackendError
        from repro.sat.backends import fold_portfolio_flags

        with pytest.raises(BackendError, match="internal solver"):
            fold_portfolio_flags("kissat", 2, None)
        with pytest.raises(BackendError, match="cube-depth"):
            fold_portfolio_flags("internal", 2, 0)
        with pytest.raises(BackendError, match="cube-depth"):
            fold_portfolio_flags("internal", None, 13)
        with pytest.raises(BackendError, match="worker"):
            fold_portfolio_flags("internal", 0, None)

    def test_runner_cli_rejects_oversized_cube_depth(self, capsys):
        code = main(["--suite", "training", "--size", "1",
                     "--pipelines", "Baseline", "--cube-depth", "13"])
        assert code == 2
        assert "cube-depth" in capsys.readouterr().out

    def test_sweep_runs_with_portfolio_backend(self, tmp_path, capsys):
        store = tmp_path / "portfolio.jsonl"
        code = main([
            "--suite", "training", "--size", "1",
            "--pipelines", "Baseline", "--portfolio", "2",
            "--time-limit", "30", "--store", str(store),
        ])
        assert code == 0
        assert store.exists()
        out = capsys.readouterr().out
        assert "1 tasks" in out or "1 instances" in out
