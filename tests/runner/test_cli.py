"""Tests for the ``python -m repro.runner`` command-line interface."""

import json

import pytest

from repro.runner.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.suite == "test"
        assert args.pipelines == ["Baseline", "Comp.", "Ours"]
        assert args.jobs == 1

    def test_rejects_unknown_pipeline(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--pipelines", "Nope"])

    def test_rejects_unknown_suite(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--suite", "nope"])


class TestMain:
    def run_cli(self, tmp_path, capsys, extra=()):
        store = tmp_path / "sweep.jsonl"
        code = main([
            "--suite", "training", "--size", "2", "--pipelines", "Baseline",
            "--time-limit", "15", "--store", str(store), *extra,
        ])
        assert code == 0
        return store, capsys.readouterr().out

    def test_sweep_writes_store_and_reports(self, tmp_path, capsys):
        store, out = self.run_cli(tmp_path, capsys)
        assert store.exists()
        records = [json.loads(line) for line in store.read_text().splitlines()]
        assert len(records) == 2
        assert {record["pipeline"] for record in records} == {"Baseline"}
        assert "runtime comparison" in out
        assert "0 cache hits" in out

    def test_second_invocation_is_fully_cached(self, tmp_path, capsys):
        self.run_cli(tmp_path, capsys)
        store, out = self.run_cli(tmp_path, capsys)
        assert "2 cache hits, 0 executed (100% cached)" in out
        # Aggregates come straight from the store, so they reproduce exactly.
        records = [json.loads(line) for line in store.read_text().splitlines()]
        assert len(records) == 2
