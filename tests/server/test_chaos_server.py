"""Chaos coverage for the solve server.

The unmarked smoke runs in tier-1 (seconds); the ``@pytest.mark.chaos``
acceptance test is the ISSUE's sustained-load scenario: mixed traffic
with killed pool workers, dropped client connections, slow-loris clients
and store faults — every accepted request must still reach a terminal
state with a verdict that matches an undisturbed direct run.
"""

import asyncio

import pytest

from repro.resilience.chaos import ChaosSpec, use_chaos
from repro.runner.store import ShardedResultStore
from repro.server.http import HttpServer
from repro.server.jobs import JobSpec, execute_job
from repro.server.loadgen import build_workload, run_load
from repro.server.service import AdmissionError, SolveService


def test_shedding_ladder_quick_smoke():
    """Tier-1: overload a tiny server and walk all three ladder rungs."""
    clock_now = [100.0]
    service = SolveService(jobs=1, max_queue=4, shed_at=0.9,
                           quota_burst=100, queue_wait_limit=5.0,
                           clock=lambda: clock_now[0])

    def spec(seed):
        return JobSpec.from_json(
            {"payload": f"p cnf 2 2\n1 {1 + seed % 2} 0\n-1 -2 0\n",
             "name": f"rung-{seed}", "time_limit": 1 + seed})

    # Rung 1: the full queue rejects new work with backpressure advice.
    jobs = [service.submit(spec(seed))[0] for seed in range(4)]
    with pytest.raises(AdmissionError) as info:
        service.submit(spec(9))
    assert info.value.reason == "queue-full"
    assert info.value.retry_after > 0

    # Rung 2: once the head is stale, queued work is shed newest-first
    # to make room for fresh work.
    clock_now[0] += 10.0
    fresh, outcome = service.submit(spec(9))
    assert outcome == "accepted"
    assert jobs[3].state == "cancelled" and jobs[3].reason == "shed"

    # Rung 3: drain cancels everything still queued, terminally.
    asyncio.run(service.shutdown(grace=1.0))
    for job in jobs[:3] + [fresh]:
        assert job.terminal
        assert job.result["status"] == "CANCELLED"
    assert service.health()["status"] == "draining"
    with pytest.raises(AdmissionError) as info:
        service.submit(spec(10))
    assert info.value.status == 503


def test_loadgen_survives_dropped_responses():
    """Tier-1: a dropped connection costs one client, never the server."""
    workload = build_workload(10, seed=3, mix=("cnf",), dup_fraction=0.2)

    async def main():
        service = SolveService(jobs=1, max_queue=4, quota_burst=1000,
                               quota_rate=1000)
        await service.start()
        http = HttpServer(service, port=0)
        await http.start()
        try:
            with use_chaos(ChaosSpec(drop_client=1)):
                report = await run_load("127.0.0.1", http.port, workload,
                                        concurrency=8, sync_wait=30.0)
        finally:
            await http.stop()
            await service.shutdown(grace=30.0)
        return service, report

    service, report = asyncio.run(main())
    assert report.requests == 10
    assert report.errors <= 1          # only the chaos-dropped client
    assert report.ok >= 9
    # The tiny queue forced real backpressure, and clients survived it.
    assert service.metrics.counter("server.shed").value > 0
    assert report.retries > 0
    for job in service._jobs.values():
        assert job.terminal


@pytest.mark.chaos
def test_sustained_mixed_load_acceptance(tmp_path, monkeypatch):
    """ISSUE acceptance: sustained mixed load under compound chaos.

    Faults: pool workers SIGKILLed on every aig solve (once each, via the
    flags latch), two client connections aborted mid-response, two
    slow-loris clients, three store append failures.  Required outcome:
    every accepted job reaches a terminal state server-side, every
    verdict a client received matches an undisturbed direct computation,
    and the server drains cleanly.
    """
    flags = tmp_path / "flags"
    monkeypatch.setenv(
        "REPRO_CHAOS",
        f"kill_task=lg-aig,drop_client=2,slow_client=2,store_errors=3,"
        f"flags={flags}")
    workload = build_workload(48, seed=11, dup_fraction=0.35)

    async def main():
        service = SolveService(
            jobs=1,  # one worker: each kill hits only the matching task
            max_queue=max(64, len(workload)), quota_rate=10_000.0,
            quota_burst=10_000.0,
            store=ShardedResultStore(tmp_path / "store"))
        await service.start()
        http = HttpServer(service, port=0)
        await http.start()
        try:
            report = await run_load("127.0.0.1", http.port, workload,
                                    concurrency=8, sync_wait=30.0)
        finally:
            await http.stop()
            await service.shutdown(grace=60.0)
        return service, report

    service, report = asyncio.run(main())

    # Client view: at most the chaos-disturbed connections failed
    # (2 dropped + 2 slow-loris cut off), and dedup still worked.
    assert report.requests == len(workload)
    assert report.errors <= 4
    assert report.dedup_hits > 0

    # Server view: nothing accepted was lost, the pool was rebuilt after
    # worker kills, and the failed store appends were counted.
    for job in service._jobs.values():
        assert job.terminal, f"{job.id} stuck in {job.state}"
        assert job.result is not None
    assert service.metrics.counter("server.pool_rebuilds").value >= 1
    assert service.metrics.counter("server.worker_retries").value >= 1
    assert service.metrics.counter("server.store_errors").value == 3
    assert service.health()["status"] == "draining"
    assert service.health()["active"] == 0

    # Verdict cross-check: recompute every ok verdict directly, without
    # chaos, and demand agreement (dedup/memo must never change answers).
    monkeypatch.delenv("REPRO_CHAOS")
    expected: dict[str, str] = {}
    for spec_dict, outcome in zip(workload, report.outcomes):
        if not outcome.ok:
            continue
        fingerprint = JobSpec.from_json(spec_dict).fingerprint()
        if fingerprint not in expected:
            expected[fingerprint] = execute_job(spec_dict)["status"]
        assert outcome.status == expected[fingerprint], \
            f"{spec_dict.get('name')}: {outcome.status} != " \
            f"{expected[fingerprint]}"
