"""Load generator: workload construction, reporting, end-to-end CLI."""

import json

from repro.server.jobs import JobSpec
from repro.server.loadgen import (LoadReport, RequestOutcome, _percentile,
                                  build_workload, main)


class TestBuildWorkload:
    def test_deterministic_for_a_seed(self):
        assert build_workload(20, seed=3) == build_workload(20, seed=3)
        assert build_workload(20, seed=3) != build_workload(20, seed=4)

    def test_contains_duplicates_at_requested_fraction(self):
        workload = build_workload(60, seed=1, dup_fraction=0.5)
        payloads = [spec["payload"] for spec in workload]
        distinct = len(set(payloads))
        assert distinct < len(payloads)          # duplicates exist
        assert distinct > len(payloads) // 4     # but not everything

    def test_zero_dup_fraction_is_all_fresh(self):
        # Payload text can repeat across aig requests (the workload salts
        # them via config), so distinctness is judged by fingerprint —
        # the key the server dedups on.
        workload = build_workload(12, seed=2, dup_fraction=0.0)
        fingerprints = {JobSpec.from_json(spec).fingerprint()
                        for spec in workload}
        assert len(fingerprints) == 12

    def test_every_spec_passes_admission_validation(self):
        for spec in build_workload(24, seed=5):
            JobSpec.from_json(spec)  # raises BadRequest on any bad spec

    def test_mix_is_respected(self):
        only_cnf = build_workload(10, seed=1, mix=("cnf",),
                                  dup_fraction=0.0)
        assert all(spec["kind"] == "solve" and
                   spec["payload"].startswith("p cnf")
                   for spec in only_cnf)


class TestReport:
    def test_percentile_nearest_rank(self):
        assert _percentile([], 0.5) == 0.0
        assert _percentile([5.0], 0.99) == 5.0
        values = [float(v) for v in range(1, 101)]
        # Nearest-rank on 100 values: round(0.5 * 99) = 50 -> value 51.
        assert _percentile(values, 0.50) == 51.0
        assert _percentile(values, 0.99) == 99.0

    def test_aggregates(self):
        report = LoadReport(outcomes=[
            RequestOutcome(kind="solve", ok=True, latency_s=0.010,
                           cached=True),
            RequestOutcome(kind="solve", ok=True, latency_s=0.030),
            RequestOutcome(kind="sweep", ok=False, retries=2,
                           error="boom"),
        ], wall_s=2.0)
        assert report.requests == 3
        assert report.ok == 2
        assert report.errors == 1
        assert report.dedup_hits == 1
        assert report.retries == 2
        assert report.rps == 1.0
        assert report.p50_ms == 10.0
        data = report.as_dict()
        assert data["ok"] == 2 and data["p99_ms"] == 30.0
        assert "2 ok" in report.summary()


def test_cli_end_to_end_spawned_server(tmp_path, capsys):
    """The satellite CI smoke in miniature: spawn, drive, report, exit 0."""
    out = tmp_path / "report.json"
    code = main(["--requests", "8", "--concurrency", "4", "--jobs", "2",
                 "--seed", "7", "--json", str(out)])
    assert code == 0
    printed = capsys.readouterr().out
    assert "8 requests: 8 ok, 0 errors" in printed
    report = json.loads(out.read_text())
    assert report["requests"] == 8
    assert report["ok"] == 8
    assert report["errors"] == 0
    assert report["rps"] > 0
