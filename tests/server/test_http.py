"""HTTP transport: routes, status codes, and socket-edge protection."""

import asyncio
import json

from repro.benchgen import random_cnf
from repro.cnf import write_dimacs
from repro.resilience.chaos import ChaosSpec, use_chaos
from repro.server.http import HttpServer
from repro.server.service import SolveService


def _body(seed=1, **extra):
    data = {"payload": write_dimacs(random_cnf(8, 28, seed))}
    data.update(extra)
    return data


async def _request(port, method, path, body=None, headers=None,
                   timeout=30.0):
    """One connection-per-request HTTP exchange; returns (status,
    headers, decoded-JSON-or-None)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        payload = json.dumps(body).encode() if body is not None else b""
        lines = [f"{method} {path} HTTP/1.1", "host: t", "connection: close"]
        if payload:
            lines.append(f"content-length: {len(payload)}")
        for key, value in (headers or {}).items():
            lines.append(f"{key}: {value}")
        writer.write("\r\n".join(lines).encode() + b"\r\n\r\n" + payload)
        await writer.drain()
        head = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"),
                                      timeout)
        head_lines = head.decode("latin-1").split("\r\n")
        status = int(head_lines[0].split(" ")[1])
        response_headers = {}
        for line in head_lines[1:]:
            if not line:
                continue
            key, _, value = line.partition(":")
            response_headers[key.strip().lower()] = value.strip()
        length = int(response_headers.get("content-length", "0") or "0")
        rest = await asyncio.wait_for(reader.readexactly(length), timeout) \
            if length else b""
    finally:
        writer.close()
    decoded = json.loads(rest) if rest else None
    return status, response_headers, decoded


async def _with_server(body_fn, *, start_service=True, grace=5.0,
                       **service_kwargs):
    service_kwargs.setdefault("jobs", 1)
    service_kwargs.setdefault("quota_burst", 100)
    service = SolveService(**service_kwargs)
    http = HttpServer(service, port=0)
    if start_service:
        await service.start()
    await http.start()
    try:
        return await body_fn(http.port, service)
    finally:
        await http.stop()
        await service.shutdown(grace=grace)


def test_healthz_and_metricsz():
    async def body(port, service):
        status, _, health = await _request(port, "GET", "/healthz")
        assert status == 200
        assert health["status"] == "serving"
        status, _, metrics = await _request(port, "GET", "/metricsz")
        assert status == 200
        assert "counters" in metrics

    asyncio.run(_with_server(body))


def test_synchronous_fast_path_returns_200_with_result():
    async def body(port, service):
        status, _, payload = await _request(
            port, "POST", "/v1/jobs?wait=30", body=_body(1))
        assert status == 200
        assert payload["state"] == "done"
        assert payload["outcome"] == "accepted"
        assert payload["result"]["status"] in ("SAT", "UNSAT")

    asyncio.run(_with_server(body))


def test_submit_poll_fetch_lifecycle():
    async def body(port, service):
        status, _, accepted = await _request(
            port, "POST", "/v1/jobs", body=_body(2))
        assert status == 202
        assert accepted["poll"].startswith("/v1/jobs/")
        # Long-poll until terminal, then fetch the durable result.
        status, _, polled = await _request(
            port, "GET", accepted["poll"] + "?wait=30")
        assert status == 200
        assert polled["state"] == "done"
        status, _, result = await _request(
            port, "GET", accepted["poll"] + "/result")
        assert status == 200
        assert result["result"]["status"] in ("SAT", "UNSAT")

    asyncio.run(_with_server(body))


def test_result_conflicts_while_job_is_queued():
    async def body(port, service):
        # The service is never started: the job stays queued forever.
        status, _, accepted = await _request(
            port, "POST", "/v1/jobs", body=_body(3))
        assert status == 202
        status, _, payload = await _request(
            port, "GET", accepted["poll"] + "/result")
        assert status == 409
        assert payload["state"] == "queued"

    asyncio.run(_with_server(body, start_service=False, grace=0.5))


def test_client_errors():
    async def body(port, service):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(b"POST /v1/jobs HTTP/1.1\r\nhost: t\r\n"
                     b"connection: close\r\ncontent-length: 7\r\n\r\n"
                     b"not json")
        # (8 bytes sent, 7 declared: the eighth is ignored)
        await writer.drain()
        raw = await reader.read(-1)
        writer.close()
        assert b" 400 " in raw.split(b"\r\n", 1)[0]

        status, _, payload = await _request(
            port, "POST", "/v1/jobs", body={"kind": "nope", "payload": "x"})
        assert status == 400
        assert "kind" in payload["error"]

        status, _, _ = await _request(port, "GET", "/v1/jobs/ghost")
        assert status == 404
        status, _, _ = await _request(port, "GET", "/nowhere")
        assert status == 404
        status, _, _ = await _request(port, "GET", "/v1/jobs")
        assert status == 405
        status, _, _ = await _request(port, "POST", "/healthz", body={})
        assert status == 405

    asyncio.run(_with_server(body))


def test_quota_answers_429_with_retry_after_header():
    async def body(port, service):
        first, _, _ = await _request(
            port, "POST", "/v1/jobs?wait=30", body=_body(4),
            headers={"x-client-id": "greedy"})
        assert first == 200
        status, headers, payload = await _request(
            port, "POST", "/v1/jobs", body=_body(5),
            headers={"x-client-id": "greedy"})
        assert status == 429
        assert payload["reason"] == "quota"
        assert float(headers["retry-after"]) > 0

    asyncio.run(_with_server(body, quota_burst=1, quota_rate=0.01))


def test_payload_too_large_is_413():
    async def body(port, service):
        big = {"payload": "p cnf 1 1\n" + "1 0\n" * 40000}
        status, _, _ = await _request(port, "POST", "/v1/jobs", body=big)
        assert status == 413

    async def run():
        service = SolveService(jobs=1, quota_burst=100)
        http = HttpServer(service, port=0, max_body=1024)
        await http.start()
        try:
            await body(http.port, service)
        finally:
            await http.stop()
            await service.shutdown(grace=0.5)

    asyncio.run(run())


def test_slow_loris_is_cut_off_and_server_survives():
    async def run():
        service = SolveService(jobs=1, quota_burst=100)
        await service.start()
        http = HttpServer(service, port=0, header_timeout=0.2)
        await http.start()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", http.port)
            writer.write(b"GET /he")  # ...and then never finish the headers
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(-1), 10)
            writer.close()
            # Either a polite 408 or a summary disconnect — never a hang.
            assert raw == b"" or b" 408 " in raw.split(b"\r\n", 1)[0]
            status, _, _ = await _request(http.port, "GET", "/healthz")
            assert status == 200
        finally:
            await http.stop()
            await service.shutdown(grace=5.0)

    asyncio.run(run())


def test_drop_client_chaos_aborts_the_connection():
    async def body(port, service):
        with use_chaos(ChaosSpec(drop_client=1)):
            try:
                status, _, payload = await _request(
                    port, "GET", "/healthz", timeout=10)
                dropped = payload is None
            except (ConnectionResetError, asyncio.IncompleteReadError,
                    IndexError):  # RST, torn read, or empty response
                dropped = True
        assert dropped  # the one chaos-armed response never arrived
        status, _, health = await _request(port, "GET", "/healthz")
        assert status == 200
        assert health["status"] == "serving"

    asyncio.run(_with_server(body))
