"""SolveService: admission, quotas, shedding ladder, supervision."""

import asyncio

import pytest

from repro.cnf import write_dimacs
from repro.benchgen import random_cnf
from repro.resilience.chaos import ChaosSpec, use_chaos
from repro.runner.store import ShardedResultStore, StoreError
from repro.server.jobs import JobSpec
from repro.server.service import AdmissionError, SolveService, TokenBucket


def _spec(seed=1, **extra):
    data = {"payload": write_dimacs(random_cnf(10, 34, seed)),
            "name": extra.pop("name", f"cnf-{seed}")}
    data.update(extra)
    return JobSpec.from_json(data)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


async def _serve(service, coro_fn, grace=10.0):
    """start → body → drain, returning the body's result."""
    await service.start()
    try:
        return await coro_fn()
    finally:
        await service.shutdown(grace=grace)


async def _finish(job, timeout=60.0):
    await asyncio.wait_for(job.done_event.wait(), timeout)
    return job


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.take() == 0.0
        assert bucket.take() == 0.0
        wait = bucket.take()
        assert wait == pytest.approx(1.0)
        clock.now += 1.5
        assert bucket.take() == 0.0

    def test_zero_rate_never_refills(self):
        bucket = TokenBucket(rate=0.0, burst=1.0, clock=FakeClock())
        assert bucket.take() == 0.0
        assert bucket.take() == float("inf")


class TestAdmission:
    """The door is synchronous: no event loop needed to test it."""

    def test_quota_exhaustion_is_a_429_with_retry_after(self):
        clock = FakeClock()
        service = SolveService(quota_rate=1.0, quota_burst=2.0, clock=clock)
        service.submit(_spec(1), client="alice")
        service.submit(_spec(2), client="alice")
        with pytest.raises(AdmissionError) as info:
            service.submit(_spec(3), client="alice")
        assert info.value.reason == "quota"
        assert info.value.status == 429
        assert info.value.retry_after > 0
        # Quotas are per client: bob is unaffected.
        service.submit(_spec(3), client="bob")
        # And they refill with the clock.
        clock.now += 2.0
        service.submit(_spec(4), client="alice")
        assert service.metrics.counter("server.shed").value == 1

    def test_overload_shed_below_hard_queue_limit(self):
        service = SolveService(max_queue=4, shed_at=0.5, quota_burst=100)
        service.submit(_spec(1))
        service.submit(_spec(2))
        with pytest.raises(AdmissionError) as info:
            service.submit(_spec(3))
        assert info.value.reason == "overloaded"
        assert info.value.retry_after > 0

    def test_queue_full_when_shed_threshold_rounds_past_capacity(self):
        service = SolveService(max_queue=4, shed_at=0.9, quota_burst=100)
        for seed in range(4):
            service.submit(_spec(seed))
        with pytest.raises(AdmissionError) as info:
            service.submit(_spec(9))
        assert info.value.reason == "queue-full"

    def test_ladder_rung_two_sheds_newest_queued_first(self):
        clock = FakeClock()
        service = SolveService(max_queue=4, shed_at=0.9, quota_burst=100,
                               queue_wait_limit=10.0, clock=clock)
        jobs = [service.submit(_spec(seed))[0] for seed in range(4)]
        clock.now += 20.0  # the head has now waited past the limit
        fresh, outcome = service.submit(_spec(9))
        assert outcome == "accepted"
        # The *newest* queued job was sacrificed, not the old head.
        assert jobs[3].state == "cancelled"
        assert jobs[3].reason == "shed"
        assert jobs[3].result["status"] == "CANCELLED"
        assert all(not job.terminal for job in jobs[:3])
        assert not fresh.terminal

    def test_live_dedup_attaches_to_inflight_job(self):
        service = SolveService(quota_burst=100)
        job1, outcome1 = service.submit(_spec(7))
        job2, outcome2 = service.submit(_spec(7))
        assert outcome1 == "accepted" and outcome2 == "dedup"
        assert job1 is job2
        assert service.metrics.counter("server.dedup_hits").value == 1

    def test_draining_rejects_with_503(self):
        async def main():
            service = SolveService(jobs=1)
            await service.start()
            await service.shutdown(grace=1.0)
            with pytest.raises(AdmissionError) as info:
                service.submit(_spec(1))
            assert info.value.status == 503
            assert info.value.reason == "draining"
            assert service.health()["status"] == "draining"
        asyncio.run(main())


class TestExecution:
    def test_submit_executes_and_memoizes(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store")

        async def main():
            service = SolveService(jobs=1, store=store, quota_burst=100)

            async def body():
                job, outcome = service.submit(_spec(21))
                assert outcome == "accepted"
                await _finish(job)
                assert job.state == "done"
                assert job.result["status"] in ("SAT", "UNSAT")
                # Second submission is a pure store read: terminal at once.
                rerun, outcome2 = service.submit(_spec(21))
                assert outcome2 == "cached"
                assert rerun.terminal and rerun.cached
                assert rerun.result["status"] == job.result["status"]
                return job.fingerprint

            return await _serve(service, body)

        fingerprint = asyncio.run(main())
        # The memo survives the service: a fresh one hits the same store.
        assert store.get_record(fingerprint)["result"]["status"] \
            in ("SAT", "UNSAT")

        async def second_life():
            service = SolveService(jobs=1, store=store, quota_burst=100)

            async def body():
                job, outcome = service.submit(_spec(21))
                assert outcome == "cached"
                assert job.terminal

            await _serve(service, body)

        asyncio.run(second_life())

    def test_worker_crash_recovery(self, tmp_path, monkeypatch):
        """A SIGKILLed pool worker breaks the pool; the job still lands."""
        flags = tmp_path / "flags"
        flags.mkdir()
        monkeypatch.setenv("REPRO_CHAOS",
                           f"kill_task=victim,flags={flags}")

        async def main():
            service = SolveService(jobs=1, quota_burst=100)

            async def body():
                job, _ = service.submit(_spec(31, name="victim-1"))
                await _finish(job)
                return job

            return await _serve(service, body), service

        job, service = asyncio.run(main())
        assert job.state == "done"
        assert job.result["status"] in ("SAT", "UNSAT")
        assert service.metrics.counter("server.worker_retries").value >= 1
        assert service.metrics.counter("server.pool_rebuilds").value >= 1
        assert service.health()["pool_generation"] >= 2

    def test_reject_spawn_is_retried(self):
        async def main():
            service = SolveService(jobs=1, quota_burst=100)

            async def body():
                with use_chaos(ChaosSpec(reject_spawn=1)):
                    job, _ = service.submit(_spec(41))
                    await _finish(job)
                return job

            return await _serve(service, body), service

        job_and_service = asyncio.run(main())
        job, service = job_and_service
        assert job.state == "done"
        assert job.result["status"] in ("SAT", "UNSAT")
        assert service.metrics.counter("server.worker_retries").value == 1

    def test_store_failure_never_fails_the_job(self):
        class ExplodingStore:
            def get_record(self, fingerprint):
                return None

            def put_record(self, fingerprint, record):
                raise StoreError("disk on fire")

        async def main():
            service = SolveService(jobs=1, store=ExplodingStore(),
                                   quota_burst=100)

            async def body():
                job, _ = service.submit(_spec(51))
                await _finish(job)
                return job

            return await _serve(service, body), service

        job, service = asyncio.run(main())
        assert job.state == "done"
        assert job.result["status"] in ("SAT", "UNSAT")
        assert service.metrics.counter("server.store_errors").value == 3

    def test_shutdown_cancels_queued_jobs(self):
        async def main():
            service = SolveService(jobs=1, quota_burst=100)
            jobs = [service.submit(_spec(seed))[0]
                    for seed in range(60, 63)]
            await service.shutdown(grace=1.0)
            return jobs

        jobs = asyncio.run(main())
        for job in jobs:
            assert job.state == "cancelled"
            assert job.reason == "shutdown"
            assert job.result["status"] == "CANCELLED"
            assert job.done_event.is_set()

    def test_budget_defaults_are_applied(self):
        service = SolveService(time_limit=7.5, mem_limit_mb=256,
                               quota_burst=100)
        job, _ = service.submit(_spec(71))
        assert job.spec.time_limit == 7.5
        assert job.spec.mem_limit_mb == 256
        assert job.spec.hard_timeout is not None

    def test_health_shape(self):
        service = SolveService(jobs=3, max_queue=10, quota_burst=100)
        service.submit(_spec(81))
        health = service.health()
        assert health["status"] == "serving"
        assert health["queued"] == 1
        assert health["workers"] == 3
        assert health["capacity"] == 10
        snapshot = service.metrics_snapshot()
        assert snapshot["counters"]["server.accepted"]["value"] == 1
