"""Satellite: dedup/memoization semantics, including the proof bypass."""

import asyncio
import json

from repro.runner.store import ShardedResultStore
from repro.server.http import HttpServer
from repro.server.jobs import JobSpec
from repro.server.service import SolveService

UNSAT_CNF = "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n"


def _spec(**extra):
    return JobSpec.from_json({"payload": UNSAT_CNF, **extra})


async def _drive(service, body):
    await service.start()
    try:
        return await body()
    finally:
        await service.shutdown(grace=10.0)


async def _post_wait(port, body, client):
    """POST ?wait=30, return (status, decoded body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        payload = json.dumps(body).encode()
        writer.write((f"POST /v1/jobs?wait=30 HTTP/1.1\r\nhost: t\r\n"
                      f"connection: close\r\nx-client-id: {client}\r\n"
                      f"content-length: {len(payload)}\r\n\r\n").encode()
                     + payload)
        await writer.drain()
        head = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), 60)
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ")[1])
        length = 0
        for line in lines[1:]:
            key, _, value = line.partition(":")
            if key.strip().lower() == "content-length":
                length = int(value.strip())
        blob = await asyncio.wait_for(reader.readexactly(length), 60)
    finally:
        writer.close()
    return status, json.loads(blob)


def test_concurrent_identical_submissions_run_once():
    """Two clients race the same payload: one execution, two verdicts."""
    async def main():
        service = SolveService(jobs=1, quota_burst=100)

        async def body():
            job1, outcome1 = service.submit(_spec(), client="alice")
            job2, outcome2 = service.submit(_spec(), client="bob")
            assert outcome1 == "accepted"
            assert outcome2 == "dedup"
            assert job1 is job2  # bob attached to alice's live job
            await asyncio.wait_for(job1.done_event.wait(), 60)
            assert job1.result["status"] == "UNSAT"
            return service.metrics.counter("server.completed").value

        completed = await _drive(service, body)
        assert completed == 1  # one pool execution served both clients

    asyncio.run(main())


def test_concurrent_http_submissions_share_one_execution():
    async def main():
        service = SolveService(jobs=1, quota_burst=100)
        http = HttpServer(service, port=0)
        await service.start()
        await http.start()
        try:
            results = await asyncio.gather(
                _post_wait(http.port, {"payload": UNSAT_CNF}, "alice"),
                _post_wait(http.port, {"payload": UNSAT_CNF}, "bob"),
            )
            outcomes = sorted(payload["outcome"] for _, payload in results)
            for status, payload in results:
                assert status == 200
                assert payload["result"]["status"] == "UNSAT"
            # One request won the race; the other deduped onto it (or hit
            # the memo if it lost the race entirely).
            assert outcomes[0] == "accepted"
            assert outcomes[1] in ("dedup", "cached")
            assert service.metrics.counter("server.completed").value == 1
        finally:
            await http.stop()
            await service.shutdown(grace=10.0)

    asyncio.run(main())


def test_memo_hit_marks_job_cached(tmp_path):
    async def main():
        service = SolveService(jobs=1, quota_burst=100,
                               store=ShardedResultStore(tmp_path / "s"))

        async def body():
            job, _ = service.submit(_spec())
            await asyncio.wait_for(job.done_event.wait(), 60)
            rerun, outcome = service.submit(_spec(), client="later")
            assert outcome == "cached"
            assert rerun.cached and rerun.terminal
            assert rerun.result["status"] == "UNSAT"
            assert rerun is not job

        await _drive(service, body)

    asyncio.run(main())


def test_proof_requests_bypass_the_cache_in_both_directions(tmp_path):
    store = ShardedResultStore(tmp_path / "store")

    async def main():
        service = SolveService(jobs=1, quota_burst=100, store=store)

        async def body():
            # Seed the memo with a plain solve.
            plain, _ = service.submit(_spec())
            await asyncio.wait_for(plain.done_event.wait(), 60)
            assert store.get_record(plain.fingerprint) is not None

            # Read bypass: a proof request must re-run (the memo has no
            # proof to give), and must come back carrying one.
            proved, outcome = service.submit(_spec(proof=True))
            assert outcome == "accepted"
            await asyncio.wait_for(proved.done_event.wait(), 60)
            assert proved.result["status"] == "UNSAT"
            assert proved.result["proof"].strip()
            assert proved.result["proof_cnf"].startswith("p cnf")
            return plain.fingerprint

        return await _drive(service, body)

    fingerprint = asyncio.run(main())
    # Write bypass: the proof run must not have touched the memo record
    # (same fingerprint, and proof results are never persisted).
    record = store.get_record(fingerprint)
    assert "proof" not in record["result"]

    async def second():
        service = SolveService(jobs=1, quota_burst=100,
                               store=ShardedResultStore(tmp_path / "empty"))

        async def body():
            # A proof-first service never seeds the cache either.
            proved, _ = service.submit(_spec(proof=True))
            await asyncio.wait_for(proved.done_event.wait(), 60)
            assert proved.result["status"] == "UNSAT"
            follow, outcome = service.submit(_spec())
            assert outcome == "accepted"  # nothing was cached by the proof
            await asyncio.wait_for(follow.done_event.wait(), 60)

        await _drive(service, body)

    asyncio.run(second())
