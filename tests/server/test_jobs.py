"""Job specs: validation, fingerprinting, and worker-side execution."""

import pytest

from repro.aig.aiger import write_aiger
from repro.benchgen import adder_equivalence_miter, random_aig, random_cnf
from repro.cnf import write_dimacs
from repro.resilience.chaos import ChaosSpec, use_chaos
from repro.runner.task import Task
from repro.server.jobs import (BadRequest, JobSpec, execute_job,
                               sniff_format)


def _cnf_payload(num_vars=12, num_clauses=40, seed=3):
    return write_dimacs(random_cnf(num_vars, num_clauses, seed))


def _aig_payload(seed=1):
    return write_aiger(random_aig(num_pis=4, num_nodes=14, seed=seed))


UNSAT_CNF = "p cnf 1 2\n1 0\n-1 0\n"


class TestFromJson:
    def test_minimal_cnf_solve(self):
        spec = JobSpec.from_json({"payload": _cnf_payload()})
        assert spec.kind == "solve"
        assert spec.fmt == "cnf"

    def test_format_sniffing(self):
        assert sniff_format(_aig_payload()) == "aig"
        assert sniff_format(_cnf_payload()) == "cnf"
        spec = JobSpec.from_json({"payload": _aig_payload()})
        assert spec.fmt == "aig"

    def test_pipeline_aliases(self):
        for raw, canonical in (("baseline", "Baseline"), ("comp", "Comp."),
                               ("ours", "Ours"), ("Ours", "Ours")):
            spec = JobSpec.from_json({"payload": _aig_payload(),
                                      "pipeline": raw})
            assert spec.pipeline == canonical

    @pytest.mark.parametrize("bad", [
        "not a dict",
        {},                                              # missing payload
        {"payload": "   "},                              # blank payload
        {"payload": "p cnf 1 1\n1 0\n", "kind": "nope"},
        {"payload": "p cnf 1 1\n1 0\n", "fmt": "blif"},
        {"payload": "p cnf 1 1\n1 0\n", "bogus_key": 1},
        {"payload": "p cnf 1 1\n1 0\n", "pipeline": "magic"},
        {"payload": "p cnf 1 1\n1 0\n", "backend": "nope"},
        {"payload": "p cnf 1 1\n1 0\n", "config": "nope"},
        {"payload": "p cnf 1 1\n1 0\n", "time_limit": -3},
        {"payload": "p cnf 1 1\n1 0\n", "time_limit": "fast"},
        {"payload": "p cnf 1 1\n1 0\n", "kind": "preprocess"},  # cnf payload
        {"payload": "p cnf 1 1\n1 0\n", "kind": "sweep"},
        {"payload": "aag 0 0 0 0 0\n", "kind": "preprocess",
         "proof": True},                                 # proof w/o solve
        {"payload": "p cnf 1 1\n1 0\n", "pipeline_kwargs": [1, 2]},
    ])
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(BadRequest):
            JobSpec.from_json(bad)

    def test_round_trips_through_json(self):
        spec = JobSpec.from_json({"payload": _aig_payload(),
                                  "pipeline": "ours", "config": "default",
                                  "time_limit": 5})
        again = JobSpec.from_json(spec.as_json())
        assert again == spec


class TestFingerprint:
    def test_name_and_proof_do_not_change_the_key(self):
        base = {"payload": UNSAT_CNF}
        fp = JobSpec.from_json(base).fingerprint()
        named = JobSpec.from_json({**base, "name": "other"})
        proved = JobSpec.from_json({**base, "proof": True})
        assert named.fingerprint() == fp
        assert proved.fingerprint() == fp

    def test_limits_and_payload_do_change_the_key(self):
        base = {"payload": _cnf_payload(seed=3)}
        fp = JobSpec.from_json(base).fingerprint()
        assert JobSpec.from_json(
            {**base, "time_limit": 5}).fingerprint() != fp
        assert JobSpec.from_json(
            {"payload": _cnf_payload(seed=4)}).fingerprint() != fp

    def test_aig_solve_matches_batch_task_fingerprint(self):
        """The server cache and the batch-runner cache share keys."""
        from repro.aig.aiger import read_aiger
        payload = write_aiger(adder_equivalence_miter(3, mutated=True,
                                                      seed=2))
        spec = JobSpec.from_json({"payload": payload, "kind": "solve",
                                  "pipeline": "ours", "name": "miter"})
        # What a batch runner building a task from the same AIGER file
        # would compute (serialisation normalises, so parse first).
        task = Task.from_aig(read_aiger(payload), "Ours",
                             instance_name="miter",
                             config=spec_config(spec))
        assert spec.fingerprint() == task.fingerprint()

    def test_seed_is_deterministic(self):
        spec = JobSpec.from_json({"payload": UNSAT_CNF})
        assert spec.seed() == int(spec.fingerprint()[:8], 16)


def spec_config(spec):
    from repro.server.jobs import CONFIG_PRESETS
    return CONFIG_PRESETS[spec.config]()


class TestExecuteJob:
    def test_cnf_sat_returns_model(self):
        result = execute_job({"payload": "p cnf 2 2\n1 2 0\n-1 0\n"})
        assert result["status"] == "SAT"
        model = result["model"]
        assert model["2"] is True and model["1"] is False

    def test_cnf_unsat(self):
        result = execute_job({"payload": UNSAT_CNF})
        assert result["status"] == "UNSAT"
        assert "model" not in result

    def test_aig_solve_rides_execute_task(self):
        aig = adder_equivalence_miter(3, mutated=False, seed=1)
        result = execute_job({"payload": write_aiger(aig),
                              "pipeline": "ours", "name": "eq"})
        assert result["kind"] == "solve"
        assert result["status"] == "UNSAT"  # faithful mutation-free miter
        assert result["num_vars"] > 0

    def test_proof_solve_returns_drat_and_cnf(self):
        result = execute_job({"payload": UNSAT_CNF, "proof": True})
        assert result["status"] == "UNSAT"
        assert result["proof"].strip().endswith("0")
        assert result["proof_cnf"].startswith("p cnf")

    def test_preprocess_returns_dimacs(self):
        result = execute_job({"payload": _aig_payload(seed=7),
                              "kind": "preprocess", "pipeline": "ours"})
        assert result["status"] == "DONE"
        assert result["dimacs"].startswith("p cnf")
        assert result["num_clauses"] > 0

    def test_sweep_returns_aiger(self):
        result = execute_job({"payload": _aig_payload(seed=9),
                              "kind": "sweep"})
        assert result["status"] == "DONE"
        assert result["aiger"].startswith("aag ")
        assert result["stats"]["nodes_before"] >= result["stats"]["nodes_after"]

    def test_garbage_aiger_yields_error_not_crash(self):
        result = execute_job({"payload": "aag 1 2 3\nnot aiger at all",
                              "kind": "solve", "fmt": "aig"})
        assert result["status"] == "ERROR"
        assert "error" in result

    def test_chaos_fail_task_maps_to_error(self):
        with use_chaos(ChaosSpec(fail_task="boom")):
            result = execute_job({"payload": UNSAT_CNF, "name": "boom"})
        assert result["status"] == "ERROR"

    def test_chaos_oom_task_maps_to_memout(self):
        with use_chaos(ChaosSpec(oom_task="piggy")):
            result = execute_job({"payload": UNSAT_CNF, "name": "piggy"})
        assert result["status"] == "MEMOUT"

    def test_hard_timeout_maps_to_timeout(self):
        # A budget far below interpreter startup cost trips immediately.
        payload = write_dimacs(random_cnf(60, 260, 11))
        result = execute_job({"payload": payload, "hard_timeout": 1e-4})
        assert result["status"] in ("TIMEOUT", "SAT", "UNSAT")
