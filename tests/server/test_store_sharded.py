"""Sharded result store: prefix sharding, migration, crash/concurrency
hardening (the satellite-2 torn-append fix)."""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.core.results import InstanceRun
from repro.runner.store import (ResultStore, ShardedResultStore, StoreError,
                                open_store)
from repro.runner.task import SCHEMA_VERSION
from repro.sat.stats import SolverStats


def _run(name="inst", status="SAT"):
    return InstanceRun(instance_name=name, pipeline_name="Baseline",
                       status=status, transform_time=0.1, solve_time=0.2,
                       stats=SolverStats(), num_vars=3, num_clauses=5)


def _record(fingerprint):
    return {"schema": SCHEMA_VERSION, "task": fingerprint,
            "server": 1, "result": {"status": "SAT"}}


class TestSharding:
    def test_round_trip_across_shards(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store")
        fingerprints = [f"{digit:x}{'0' * 63}" for digit in range(16)]
        for fp in fingerprints:
            store.put(fp, _run(name=fp[:4]))
        assert len(store) == 16
        assert len(store.shard_paths) == 16
        reloaded = ShardedResultStore(tmp_path / "store")
        for fp in fingerprints:
            assert fp in reloaded
            assert reloaded.get(fp).instance_name == fp[:4]

    def test_same_prefix_shares_a_shard(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store")
        store.put("a" + "0" * 63, _run())
        store.put("a" + "1" * 63, _run())
        assert len(store.shard_paths) == 1
        assert store.shard_paths[0].name == "shard-a.jsonl"

    def test_non_hex_fingerprint_folds_onto_hex_shards(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store")
        store.put_record("Zebra", _record("Zebra"))
        assert "Zebra" in store
        assert ShardedResultStore(tmp_path / "store").get_record(
            "Zebra")["result"] == {"status": "SAT"}

    def test_put_record_requires_loadable_shape(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store")
        with pytest.raises(StoreError):
            store.put_record("ab", {"result": {}})  # no schema/task keys

    def test_generic_records_round_trip(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store")
        store.put_record("cafe" + "0" * 60, _record("cafe" + "0" * 60))
        again = ShardedResultStore(tmp_path / "store")
        assert again.get_record("cafe" + "0" * 60)["server"] == 1


class TestLegacyMigration:
    def test_single_file_store_migrates_in_place(self, tmp_path):
        path = tmp_path / "results"
        legacy = ResultStore(path)
        for index in range(8):
            legacy.put(f"{index:x}{'b' * 63}", _run(name=f"r{index}"))
        migrated = ShardedResultStore(path)
        assert path.is_dir()
        assert (tmp_path / "results.legacy").is_file()
        assert len(migrated) == 8
        for index in range(8):
            assert migrated.get(f"{index:x}{'b' * 63}").instance_name \
                == f"r{index}"
        # The migrated layout reloads as a normal sharded store.
        assert len(ShardedResultStore(path)) == 8

    def test_migration_preserves_quarantine_sidecar(self, tmp_path):
        path = tmp_path / "results"
        ResultStore(path).put("c" * 64, _run())
        with path.open("a") as handle:
            handle.write("garbage that is not json\n")
        ShardedResultStore(path)
        sidecar = tmp_path / "results.legacy.corrupt"
        assert sidecar.exists()
        assert "garbage" in sidecar.read_text()

    def test_open_store_dispatches_on_shape(self, tmp_path):
        jsonl = tmp_path / "flat.jsonl"
        assert isinstance(open_store(jsonl), ResultStore)
        assert isinstance(open_store(tmp_path / "dir"), ShardedResultStore)
        # An existing legacy file at a non-.jsonl path migrates to sharded.
        legacy = tmp_path / "cache"
        ResultStore(legacy).put("d" * 64, _run())
        assert isinstance(open_store(legacy), ShardedResultStore)


def _hammer(root, worker, count, barrier):
    """Append ``count`` records as fast as possible (concurrency victim)."""
    store = ShardedResultStore(root)
    barrier.wait()
    for index in range(count):
        fp = f"{(worker * count + index) % 16:x}" \
             + f"{worker:02d}{index:04d}".ljust(63, "e")[:63]
        store.put_record(fp, {"schema": SCHEMA_VERSION, "task": fp,
                              "server": 1,
                              "result": {"status": "SAT", "w": worker,
                                         "i": index}})


class TestTornAppends:
    def test_concurrent_writers_never_interleave(self, tmp_path):
        """Satellite 2: many processes, same shards, zero torn records."""
        root = tmp_path / "store"
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(4)
        workers = [ctx.Process(target=_hammer,
                               args=(root, w, 40, barrier))
                   for w in range(4)]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join(60)
            assert proc.exitcode == 0
        store = ShardedResultStore(root)
        assert len(store) == 4 * 40
        assert store.skipped_lines == 0
        assert store.quarantined == 0

    def test_crash_mid_append_leaves_no_torn_line(self, tmp_path):
        """Kill writers at arbitrary instants: every line whole or absent.

        The append is a single ``os.write`` on an ``O_APPEND`` fd, so a
        SIGKILL 'between write and flush' cannot exist — there is no
        user-space buffer to lose.  This test SIGKILLs busy writers at
        random points and proves the survivors load clean.
        """
        root = tmp_path / "store"
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(3)
        workers = [ctx.Process(target=_hammer,
                               args=(root, w, 10_000, barrier))
                   for w in range(3)]
        for proc in workers:
            proc.start()
        barrier.wait()  # writers are mid-hammer right now
        time.sleep(0.05)
        for proc in workers:
            os.kill(proc.pid, signal.SIGKILL)
        for proc in workers:
            proc.join(30)
        store = ShardedResultStore(root)
        assert store.skipped_lines == 0
        assert store.quarantined == 0
        assert len(store) > 0  # they did get some records down first
        for path in store.shard_paths:
            for line in path.read_text().splitlines():
                json.loads(line)  # every surviving line parses whole

    def test_torn_shard_recovers_and_quarantines(self, tmp_path):
        """A pre-existing torn shard line is skipped and quarantined, and
        the shard keeps accepting appends (the ``.corrupt`` path is
        reused for sharded files)."""
        root = tmp_path / "store"
        store = ShardedResultStore(root)
        fp = "a" + "b" * 63
        store.put_record(fp, _record(fp))
        shard = store.shard_paths[0]
        with shard.open("a") as handle:
            handle.write('{"schema": 1, "task": "trunc')  # torn, no newline
        reloaded = ShardedResultStore(root)
        assert reloaded.skipped_lines == 1
        assert reloaded.quarantined == 1
        assert (shard.parent / (shard.name + ".corrupt")).exists()
        assert reloaded.get_record(fp) is not None
        reloaded.put_record("a" + "c" * 63, _record("a" + "c" * 63))
        assert len(ShardedResultStore(root)) == 2
