"""Tests for circuit features and the DeepGate2-substitute embedding."""

import numpy as np
import pytest

from repro.aig import AIG
from repro.features import DeepGateEmbedder, FEATURE_NAMES, circuit_features, state_vector
from repro.features.deepgate import po_cone_sizes
from repro.synthesis import balance, rewrite
from tests.helpers import random_aig, ripple_adder_aig


class TestCircuitFeatures:
    def test_feature_count_and_names(self):
        aig = random_aig(seed=0)
        features = circuit_features(aig)
        assert features.shape == (len(FEATURE_NAMES),)
        assert len(FEATURE_NAMES) == 6

    def test_initial_ratios_are_one(self):
        aig = random_aig(seed=1)
        features = circuit_features(aig, aig)
        np.testing.assert_allclose(features[:3], 1.0)

    def test_ratios_track_synthesis(self):
        aig = random_aig(num_pis=7, num_nodes=60, seed=2)
        rewritten = rewrite(aig)
        features = circuit_features(rewritten, aig)
        # Rewriting never increases the AND count on these circuits.
        assert features[0] <= 1.0

    def test_fractions_bounded(self):
        aig = random_aig(seed=3)
        features = circuit_features(aig)
        assert 0.0 <= features[3] <= 1.0
        assert 0.0 <= features[4] <= 1.0
        assert abs(features[3] + features[4] - 1.0) < 1e-9

    def test_balance_feature_drops_after_balance(self):
        aig = AIG()
        acc = aig.add_pi()
        for _ in range(9):
            acc = aig.add_and(acc, aig.add_pi())
        aig.add_po(acc)
        before = circuit_features(aig, aig)[5]
        after = circuit_features(balance(aig), aig)[5]
        assert after < before

    def test_empty_aig_features(self):
        features = circuit_features(AIG())
        assert np.all(np.isfinite(features))

    def test_state_vector_concatenation(self):
        aig = random_aig(seed=4)
        embedding = np.ones(32)
        state = state_vector(aig, aig, embedding)
        assert state.shape == (6 + 32,)
        np.testing.assert_allclose(state[6:], 1.0)


class TestDeepGateEmbedder:
    def test_embedding_shape_and_norm(self):
        embedder = DeepGateEmbedder(dim=64)
        embedding = embedder.embed(random_aig(seed=5))
        assert embedding.shape == (64,)
        assert np.isclose(np.linalg.norm(embedding), 1.0)

    def test_deterministic(self):
        embedder = DeepGateEmbedder(dim=32, seed=7)
        aig = random_aig(seed=6)
        first = embedder.embed(aig)
        second = DeepGateEmbedder(dim=32, seed=7).embed(aig)
        np.testing.assert_allclose(first, second)

    def test_different_circuits_differ(self):
        embedder = DeepGateEmbedder(dim=32)
        adder = embedder.embed(ripple_adder_aig(width=4))
        random_circuit = embedder.embed(random_aig(num_pis=8, num_nodes=60, seed=8))
        assert not np.allclose(adder, random_circuit)

    def test_functionally_equal_structures_are_close(self):
        embedder = DeepGateEmbedder(dim=32)
        aig = random_aig(num_pis=7, num_nodes=50, seed=9)
        original = embedder.embed(aig)
        rewritten = embedder.embed(rewrite(aig))
        # Same function, slightly different structure: embeddings should
        # correlate far more strongly than unrelated circuits do.
        assert float(np.dot(original, rewritten)) > 0.5

    def test_empty_aig_embedding(self):
        embedder = DeepGateEmbedder(dim=32)
        embedding = embedder.embed(AIG())
        assert embedding.shape == (32,)
        assert np.all(np.isfinite(embedding))

    def test_rejects_tiny_dimension(self):
        with pytest.raises(ValueError):
            DeepGateEmbedder(dim=4)

    def test_po_cone_sizes(self):
        aig = ripple_adder_aig(width=3)
        sizes = po_cone_sizes(aig)
        assert len(sizes) == aig.num_pos
        assert all(size >= 0 for size in sizes)
        # Higher sum bits depend on more logic than the lowest sum bit.
        assert sizes[0] <= sizes[-1]
